#include "stats/histogram.h"

#include <algorithm>
#include <sstream>

namespace etlopt {
namespace {

// Positions (within `from` attr order) of the attributes in `sub_mask`.
// Both attr lists are in increasing AttrId order, so projection positions
// are computed by a linear merge.
std::vector<int> ProjectionPositions(const std::vector<AttrId>& from,
                                     AttrMask sub_mask) {
  std::vector<int> positions;
  for (size_t i = 0; i < from.size(); ++i) {
    if ((sub_mask >> from[i]) & 1) positions.push_back(static_cast<int>(i));
  }
  return positions;
}

std::vector<Value> ProjectKey(const std::vector<Value>& key,
                              const std::vector<int>& positions) {
  std::vector<Value> out;
  out.reserve(positions.size());
  for (int p : positions) out.push_back(key[static_cast<size_t>(p)]);
  return out;
}

}  // namespace

Histogram::Histogram(AttrMask attrs) : attr_mask_(attrs) {
  for (int idx : MaskToIndices(attrs)) {
    attrs_.push_back(static_cast<AttrId>(idx));
  }
}

void Histogram::Add(const std::vector<Value>& key, int64_t count) {
  ETLOPT_CHECK(key.size() == attrs_.size());
  if (count == 0) return;
  buckets_[key] += count;
  total_ += count;
}

void Histogram::Add1(Value v, int64_t count) {
  ETLOPT_CHECK(attrs_.size() == 1);
  if (count == 0) return;
  buckets_[std::vector<Value>{v}] += count;
  total_ += count;
}

int64_t Histogram::Get(const std::vector<Value>& key) const {
  auto it = buckets_.find(key);
  return it == buckets_.end() ? 0 : it->second;
}

int64_t Histogram::Get1(Value v) const { return Get(std::vector<Value>{v}); }

int64_t Histogram::DotProduct(const Histogram& a, const Histogram& b) {
  ETLOPT_CHECK_MSG(a.attr_mask_ == b.attr_mask_,
                   "DotProduct requires equal attribute sets");
  const Histogram& small = a.buckets_.size() <= b.buckets_.size() ? a : b;
  const Histogram& large = a.buckets_.size() <= b.buckets_.size() ? b : a;
  int64_t sum = 0;
  for (const auto& [key, count] : small.buckets_) {
    sum += count * large.Get(key);
  }
  return sum;
}

Histogram Histogram::MultiplyBy(const Histogram& a, const Histogram& b) {
  ETLOPT_CHECK_MSG(IsSubset(b.attr_mask_, a.attr_mask_),
                   "MultiplyBy requires b.attrs ⊆ a.attrs");
  const std::vector<int> positions =
      ProjectionPositions(a.attrs_, b.attr_mask_);
  Histogram out(a.attr_mask_);
  for (const auto& [key, count] : a.buckets_) {
    const int64_t factor = b.Get(ProjectKey(key, positions));
    if (factor != 0) out.Add(key, count * factor);
  }
  return out;
}

Histogram Histogram::DivideBy(const Histogram& a, const Histogram& b) {
  ETLOPT_CHECK_MSG(IsSubset(b.attr_mask_, a.attr_mask_),
                   "DivideBy requires b.attrs ⊆ a.attrs");
  const std::vector<int> positions =
      ProjectionPositions(a.attrs_, b.attr_mask_);
  Histogram out(a.attr_mask_);
  for (const auto& [key, count] : a.buckets_) {
    const int64_t divisor = b.Get(ProjectKey(key, positions));
    ETLOPT_CHECK_MSG(divisor > 0,
                     "union-division: bucket present in numerator but not in "
                     "divisor histogram");
    ETLOPT_CHECK_MSG(count % divisor == 0,
                     "union-division: non-exact division, modeling error");
    out.Add(key, count / divisor);
  }
  return out;
}

Histogram Histogram::DivideByClamped(const Histogram& a, const Histogram& b,
                                     int64_t* clamped) {
  ETLOPT_CHECK_MSG(IsSubset(b.attr_mask_, a.attr_mask_),
                   "DivideBy requires b.attrs ⊆ a.attrs");
  const std::vector<int> positions =
      ProjectionPositions(a.attrs_, b.attr_mask_);
  auto repair = [&] {
    if (clamped != nullptr) ++*clamped;
  };
  Histogram out(a.attr_mask_);
  for (const auto& [key, count] : a.buckets_) {
    int64_t numerator = count;
    if (numerator < 0) {
      numerator = 0;
      repair();
    }
    const int64_t divisor = b.Get(ProjectKey(key, positions));
    if (divisor <= 0) {
      // Divisor missing or non-positive: the join-through-k invariant is
      // broken. Pass the bucket through — a safe overestimate.
      out.Add(key, numerator);
      repair();
      continue;
    }
    if (numerator % divisor != 0) {
      out.Add(key, (numerator + divisor / 2) / divisor);
      repair();
      continue;
    }
    out.Add(key, numerator / divisor);
  }
  return out;
}

Histogram Histogram::Marginalize(AttrMask keep) const {
  ETLOPT_CHECK_MSG(IsSubset(keep, attr_mask_),
                   "Marginalize target must be a subset of histogram attrs");
  if (keep == attr_mask_) return *this;
  const std::vector<int> positions = ProjectionPositions(attrs_, keep);
  Histogram out(keep);
  for (const auto& [key, count] : buckets_) {
    out.Add(ProjectKey(key, positions), count);
  }
  return out;
}

int64_t Histogram::CountMatching(const Predicate& pred) const {
  const int pos = [&] {
    for (size_t i = 0; i < attrs_.size(); ++i) {
      if (attrs_[i] == pred.attr) return static_cast<int>(i);
    }
    return -1;
  }();
  ETLOPT_CHECK_MSG(pos >= 0, "predicate attribute not in histogram");
  int64_t sum = 0;
  for (const auto& [key, count] : buckets_) {
    if (pred.Matches(key[static_cast<size_t>(pos)])) sum += count;
  }
  return sum;
}

Histogram Histogram::FilterThenMarginalize(const Predicate& pred,
                                           AttrMask keep) const {
  const int pos = [&] {
    for (size_t i = 0; i < attrs_.size(); ++i) {
      if (attrs_[i] == pred.attr) return static_cast<int>(i);
    }
    return -1;
  }();
  ETLOPT_CHECK_MSG(pos >= 0, "predicate attribute not in histogram");
  ETLOPT_CHECK(IsSubset(keep, attr_mask_));
  const std::vector<int> positions = ProjectionPositions(attrs_, keep);
  Histogram out(keep);
  for (const auto& [key, count] : buckets_) {
    if (pred.Matches(key[static_cast<size_t>(pos)])) {
      out.Add(ProjectKey(key, positions), count);
    }
  }
  return out;
}

Histogram Histogram::CollapseToDistinct() const {
  Histogram out(attr_mask_);
  for (const auto& [key, count] : buckets_) {
    (void)count;
    out.Add(key, 1);
  }
  return out;
}

void Histogram::AddAll(const Histogram& other) {
  ETLOPT_CHECK_MSG(attr_mask_ == other.attr_mask_,
                   "AddAll requires equal attribute sets");
  for (const auto& [key, count] : other.buckets_) {
    Add(key, count);
  }
}

bool Histogram::operator==(const Histogram& other) const {
  if (attr_mask_ != other.attr_mask_ || total_ != other.total_ ||
      buckets_.size() != other.buckets_.size()) {
    return false;
  }
  for (const auto& [key, count] : buckets_) {
    if (other.Get(key) != count) return false;
  }
  return true;
}

std::string Histogram::ToString() const {
  // Sorted rendering for stable test output.
  std::vector<std::pair<std::vector<Value>, int64_t>> entries(buckets_.begin(),
                                                              buckets_.end());
  std::sort(entries.begin(), entries.end());
  std::ostringstream out;
  out << "H[";
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i != 0) out << ", ";
    out << "(";
    for (size_t j = 0; j < entries[i].first.size(); ++j) {
      if (j != 0) out << ",";
      out << entries[i].first[j];
    }
    out << ")=" << entries[i].second;
  }
  out << "]";
  return out.str();
}

}  // namespace etlopt
