#include "sketch/tap.h"

#include <algorithm>
#include <cmath>

#include "sketch/sketch.h"

namespace etlopt {
namespace sketch {
namespace {

// Approximate per-entry footprint of an unordered hash-table collector:
// bucket pointer + node header + hash + the key values.
int64_t HashEntryBytes(int arity) {
  return 40 + 8 * static_cast<int64_t>(arity);
}

}  // namespace

TapSketchConfig TapSketchConfig::ForBudget(int64_t bytes_per_tap, int arity) {
  TapSketchConfig config;
  // HLL: largest precision whose register file fits half the share.
  config.hll_precision = Hll::kMinPrecision;
  for (int p = 16; p >= Hll::kMinPrecision; --p) {
    if ((int64_t{1} << p) <= std::max<int64_t>(bytes_per_tap, 64)) {
      config.hll_precision = p;
      break;
    }
  }
  // Histogram taps split the share between the Count-Min counters and the
  // KMV key sample.
  const int64_t half = std::max<int64_t>(bytes_per_tap / 2, 512);
  config.cm_depth = 4;
  config.cm_width = static_cast<int>(std::clamp<int64_t>(
      half / (config.cm_depth * static_cast<int64_t>(sizeof(int64_t))), 16,
      1 << 20));
  const int64_t kmv_entry = 48 + 8 * static_cast<int64_t>(std::max(arity, 1));
  config.kmv_k = static_cast<int>(
      std::clamp<int64_t>(half / kmv_entry, 16, 1 << 20));
  return config;
}

int64_t TapSketchConfig::DistinctTapBytes() const {
  return (int64_t{1} << hll_precision) + 64;
}

int64_t TapSketchConfig::HistTapBytes(int arity) const {
  return static_cast<int64_t>(cm_width) * cm_depth *
             static_cast<int64_t>(sizeof(int64_t)) +
         static_cast<int64_t>(kmv_k) *
             (48 + 8 * static_cast<int64_t>(std::max(arity, 1))) +
         128;
}

int64_t EstimateExactDistinctBytes(int64_t rows, int arity) {
  return rows * HashEntryBytes(arity);
}

int64_t EstimateExactHistBytes(int64_t rows, int arity) {
  // Exact histograms also carry a count per bucket.
  return rows * (HashEntryBytes(arity) + 8);
}

namespace {

// The canonical composite-key hash (HashValues) computed from column
// pointers: same FNV accumulation over the attribute-ordered values, same
// Mix64 finalizer, so columnar feeds agree with per-row feeds bit for bit.
inline uint64_t HashColumnsAt(const std::vector<const Value*>& cols,
                              int64_t r) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const Value* col : cols) {
    h ^= static_cast<uint64_t>(col[r]);
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

}  // namespace

void DistinctTap::AddRow(const std::vector<Value>& key) {
  hll_.AddHash(HashValues(key));
}

void DistinctTap::AddColumns(const std::vector<const Value*>& cols,
                             int64_t rows) {
  for (int64_t r = 0; r < rows; ++r) {
    hll_.AddHash(HashColumnsAt(cols, r));
  }
}

HistTap::HistTap(const TapSketchConfig& config, int arity)
    : cm_(config.cm_width, config.cm_depth), kmv_(config.kmv_k) {
  (void)arity;
}

void HistTap::AddRow(const std::vector<Value>& key) {
  const uint64_t hash = HashValues(key);
  cm_.AddHash(hash, 1);
  kmv_.AddHashWithKey(hash, key);
  ++rows_;
}

void HistTap::AddColumns(const std::vector<const Value*>& cols,
                         int64_t rows) {
  std::vector<Value> key(cols.size());
  for (int64_t r = 0; r < rows; ++r) {
    const uint64_t hash = HashColumnsAt(cols, r);
    cm_.AddHash(hash, 1);
    if (kmv_.WouldAdmit(hash)) {
      for (size_t c = 0; c < cols.size(); ++c) key[c] = cols[c][r];
      kmv_.AddHashWithKey(hash, key);
    } else {
      // Duplicate or over-threshold hash: AddHash runs the same rejection
      // path (including the sticky saturation flag) without a key payload.
      kmv_.AddHash(hash);
    }
    ++rows_;
  }
}

Status HistTap::Merge(const HistTap& other) {
  ETLOPT_RETURN_IF_ERROR(cm_.Merge(other.cm_));
  ETLOPT_RETURN_IF_ERROR(kmv_.Merge(other.kmv_));
  rows_ += other.rows_;
  return Status::OK();
}

Histogram HistTap::Build(AttrMask attrs) const {
  Histogram hist(attrs);
  int64_t sampled_mass = 0;
  for (const auto& [hash, key] : kmv_.entries()) {
    sampled_mass += cm_.Estimate(hash);
  }
  // When the sample covers every distinct key the CM estimates stand as-is
  // (over by at most eps * N); with a partial sample, rescale so the bucket
  // mass sums back to the observed row count.
  const double scale =
      (kmv_.saturated() && sampled_mass > 0)
          ? static_cast<double>(rows_) / static_cast<double>(sampled_mass)
          : 1.0;
  for (const auto& [hash, key] : kmv_.entries()) {
    const double scaled =
        static_cast<double>(cm_.Estimate(hash)) * scale;
    hist.Add(key, std::max<int64_t>(1, static_cast<int64_t>(scaled + 0.5)));
  }
  return hist;
}

double HistTap::RelError() const {
  return cm_.EpsilonFraction() + kmv_.StandardError();
}

}  // namespace sketch
}  // namespace etlopt
