#include <gtest/gtest.h>

#include <algorithm>

#include "core/pipeline.h"
#include "test_util.h"

namespace etlopt {
namespace {

class OptimizerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ex_ = testing_util::MakePaperExample();
    const std::vector<Block> blocks = PartitionBlocks(ex_.workflow);
    ctx_ = BlockContext::Build(&ex_.workflow, blocks[0]).value();
    ps_ = PlanSpace::Build(ctx_).value();
    Executor executor(&ex_.workflow);
    exec_ = executor.Execute(ex_.sources).value();
    cards_ = ComputeGroundTruthCards(ctx_, ps_.subexpressions(), exec_)
                 .value();
  }

  testing_util::PaperExample ex_;
  BlockContext ctx_;
  PlanSpace ps_;
  ExecutionResult exec_;
  CardMap cards_;
};

TEST_F(OptimizerFixture, DpMatchesBruteForceOverPlans) {
  const OptimizedPlan plan = OptimizeJoins(ctx_, ps_, cards_).value();
  // Brute force for 3 relations: two plans, compute both costs.
  const CostParams params;
  auto join_cost = [&](RelMask l, RelMask r, RelMask out) {
    const int64_t lc = cards_.at(l);
    const int64_t rc = cards_.at(r);
    return JoinStepCost(std::max(lc, rc), std::min(lc, rc), cards_.at(out),
                        params);
  };
  const double plan_op_c = join_cost(0b001, 0b010, 0b011) +
                           join_cost(0b011, 0b100, 0b111);
  const double plan_oc_p = join_cost(0b001, 0b100, 0b101) +
                           join_cost(0b101, 0b010, 0b111);
  EXPECT_NEAR(plan.cost, std::min(plan_op_c, plan_oc_p), 1e-6);
  EXPECT_NEAR(plan.initial_cost, plan_op_c, 1e-6);
  EXPECT_LE(plan.cost, plan.initial_cost + 1e-9);
}

TEST_F(OptimizerFixture, RewritePreservesResults) {
  const OptimizedPlan plan = OptimizeJoins(ctx_, ps_, cards_).value();
  std::vector<PlanRewriter::BlockPlan> plans{{&ctx_.block(), &plan}};
  const Workflow rewritten =
      PlanRewriter::Apply(ex_.workflow, plans).value();
  EXPECT_TRUE(rewritten.Validate().ok());

  const ExecutionResult before =
      Executor(&ex_.workflow).Execute(ex_.sources).value();
  const ExecutionResult after =
      Executor(&rewritten).Execute(ex_.sources).value();
  const Table& t1 = before.targets.at("warehouse.orders");
  const Table& t2 = after.targets.at("warehouse.orders");
  EXPECT_EQ(t1.num_rows(), t2.num_rows());
  // Same multiset of rows: compare via full-schema histograms (column
  // order may differ; compare on the shared attribute set).
  const AttrMask mask = t1.schema().mask();
  ASSERT_EQ(mask, t2.schema().mask());
  EXPECT_TRUE(t1.BuildHistogram(mask) == t2.BuildHistogram(mask));
}

TEST_F(OptimizerFixture, MissingCardinalityFails) {
  CardMap incomplete = cards_;
  incomplete.erase(0b101);
  EXPECT_FALSE(OptimizeJoins(ctx_, ps_, incomplete).ok());
}

TEST(OptimizerSkewTest, PicksSmallIntermediateFirst) {
  // Dim A matches nothing (tiny intermediate); dim B explodes. The DP must
  // join A before B.
  WorkflowBuilder b("skew");
  const AttrId ka = b.DeclareAttr("ka", 50);
  const AttrId kb = b.DeclareAttr("kb", 50);
  const NodeId f = b.Source("F", {ka, kb});
  const NodeId da = b.Source("DA", {ka});
  const NodeId db = b.Source("DB", {kb});
  // Designed (bad) order: B first.
  const NodeId j1 = b.Join(f, db, kb);
  const NodeId j2 = b.Join(j1, da, ka);
  b.Sink(j2, "out");
  Workflow wf = std::move(b).Build().value();

  SourceMap sources;
  Table tf{Schema({ka, kb})};
  for (int i = 0; i < 100; ++i) tf.AddRow({(i % 10) + 1, (i % 5) + 1});
  Table tda{Schema({ka})};
  tda.AddRow({1});  // selective: only ka == 1 survives
  Table tdb{Schema({kb})};
  for (int i = 1; i <= 5; ++i) {
    for (int copies = 0; copies < 20; ++copies) tdb.AddRow({i});
  }
  sources["F"] = std::move(tf);
  sources["DA"] = std::move(tda);
  sources["DB"] = std::move(tdb);

  const std::vector<Block> blocks = PartitionBlocks(wf);
  const BlockContext ctx = BlockContext::Build(&wf, blocks[0]).value();
  const PlanSpace ps = PlanSpace::Build(ctx).value();
  const ExecutionResult exec = Executor(&wf).Execute(sources).value();
  const CardMap cards =
      ComputeGroundTruthCards(ctx, ps.subexpressions(), exec).value();
  const OptimizedPlan plan = OptimizeJoins(ctx, ps, cards).value();
  EXPECT_LT(plan.cost, plan.initial_cost);
  // Block rel numbering follows discovery order: F=0, DB=1, DA=2. The
  // optimized root must combine {F,DA} (tiny) with {DB} (exploding), i.e.
  // split the full SE as 0b101 | 0b010.
  const JoinChoice& root = plan.choices.at(ctx.full_mask());
  EXPECT_EQ(root.left | root.right, ctx.full_mask());
  EXPECT_TRUE(root.left == 0b101u || root.right == 0b101u);
}

}  // namespace
}  // namespace etlopt
