#ifndef ETLOPT_ENGINE_TABLE_H_
#define ETLOPT_ENGINE_TABLE_H_

#include <string>
#include <vector>

#include "etl/schema.h"
#include "stats/histogram.h"

namespace etlopt {

// An in-memory record-set: the engine's unit of data. Row layout follows the
// schema's attribute order.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }

  void AddRow(std::vector<Value> row) {
    ETLOPT_CHECK(static_cast<int>(row.size()) == schema_.size());
    rows_.push_back(std::move(row));
  }
  void Reserve(size_t n) { rows_.reserve(n); }

  int64_t num_rows() const { return static_cast<int64_t>(rows_.size()); }
  const std::vector<std::vector<Value>>& rows() const { return rows_; }

  Value at(int64_t row, int col) const {
    return rows_[static_cast<size_t>(row)][static_cast<size_t>(col)];
  }

  // Builds the exact frequency histogram over `attrs` (all must be in the
  // schema) — the engine-side collector of Section 3.2.5.
  Histogram BuildHistogram(AttrMask attrs) const;

  // Number of distinct value combinations of `attrs`.
  int64_t CountDistinct(AttrMask attrs) const;

  std::string ToString(const AttrCatalog& catalog, int64_t limit = 10) const;

 private:
  Schema schema_;
  std::vector<std::vector<Value>> rows_;
};

}  // namespace etlopt

#endif  // ETLOPT_ENGINE_TABLE_H_
