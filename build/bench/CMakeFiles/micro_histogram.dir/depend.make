# Empty dependencies file for micro_histogram.
# This may be replaced when dependencies are built.
