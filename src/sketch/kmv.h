#ifndef ETLOPT_SKETCH_KMV_H_
#define ETLOPT_SKETCH_KMV_H_

#include <cstdint>
#include <map>
#include <vector>

#include "util/common.h"
#include "util/json.h"
#include "util/status.h"

namespace etlopt {
namespace sketch {

// KMV (k minimum values) bottom-k distinct sketch (Bar-Yossef et al. 2002,
// Beyer et al. 2007). Keeps the k smallest distinct hashes seen; while
// under k the distinct count is exact, once saturated the estimator is
// (k-1) / h_(k) with h scaled to (0,1). The retained hashes are a uniform
// sample of the distinct keys, so each entry optionally carries its bucket
// key as payload — that sample seeds approximate histograms, and
// intersecting two sketches' bottom-k unions estimates join-key overlap.
// Merge is "union then re-truncate to bottom-k": identical to the sketch of
// the concatenated streams.
class Kmv {
 public:
  explicit Kmv(int k = 1024);

  void AddHash(uint64_t hash) { AddHashWithKey(hash, {}); }
  // Retains `key` as the payload of `hash` while it stays in the bottom-k.
  void AddHashWithKey(uint64_t hash, std::vector<Value> key);

  // Whether AddHashWithKey(hash, ...) would retain a new entry right now.
  // Pure admission test, no state change: columnar feeds use it to skip
  // materializing key payloads for rows the sketch will reject (the
  // rejection's saturation bookkeeping still needs an AddHash call).
  bool WouldAdmit(uint64_t hash) const;

  int64_t Estimate() const;

  // 1-sigma relative standard error once saturated: ~ 1 / sqrt(k - 2);
  // 0 while the sketch is still exact.
  double StandardError() const;

  bool saturated() const { return saturated_; }
  int k() const { return k_; }
  size_t size() const { return entries_.size(); }

  // Bottom-k entries in increasing hash order.
  const std::map<uint64_t, std::vector<Value>>& entries() const {
    return entries_;
  }

  Status Merge(const Kmv& other);

  // Estimated |A ∩ B| via the bottom-k of the union (requires equal k):
  // Jaccard from the shared fraction of the union's bottom-k, scaled by the
  // union estimate.
  static Result<double> EstimateIntersection(const Kmv& a, const Kmv& b);

  int64_t MemoryBytes() const;

  Json ToJson() const;
  static Result<Kmv> FromJson(const Json& j);

 private:
  int k_;
  bool saturated_ = false;
  std::map<uint64_t, std::vector<Value>> entries_;
};

}  // namespace sketch
}  // namespace etlopt

#endif  // ETLOPT_SKETCH_KMV_H_
