// Section 8 extension, part 2: does approximate statistics collection still
// pick the right plan? For a 3-relation star (the wf3 shape), the join
// order decision reduces to comparing |F ⋈ D0| with |F ⋈ D1|. We estimate
// both from bucketized join-key histograms at increasing widths and report
//   * whether the approx-driven choice matches the exact-statistics choice,
//   * the cost regret when it does not,
// over many Zipf-skewed data instances per width. This quantifies how much
// approximation the *optimizer* tolerates (more than the raw estimate error
// suggests, since only the comparison has to come out right) — the
// "allowed error" knob the paper's future work proposes to co-optimize
// with memory.

#include <cstdio>

#include "engine/executor.h"
#include "stats/approx_histogram.h"
#include "util/random.h"

using namespace etlopt;

namespace {

struct Instance {
  Table fact;
  Table d0;
  Table d1;
  int64_t fd0 = 0;  // |F ⋈ D0|
  int64_t fd1 = 0;  // |F ⋈ D1|
};

Instance MakeInstance(AttrId k0, AttrId k1, int64_t domain, uint64_t seed) {
  Rng rng(seed);
  Instance inst{Table{Schema({k0, k1})}, Table{Schema({k0})},
                Table{Schema({k1})}, 0, 0};
  // Random skews per instance so the winning side varies.
  ZipfDistribution z0(domain, 1.0 + rng.NextDouble() * 0.5);
  ZipfDistribution z1(domain, 1.0 + rng.NextDouble() * 0.5);
  for (int i = 0; i < 20000; ++i) {
    inst.fact.AddRow({z0.Sample(rng), z1.Sample(rng)});
  }
  const int64_t n0 = rng.NextInRange(500, 6000);
  const int64_t n1 = rng.NextInRange(500, 6000);
  for (int64_t i = 0; i < n0; ++i) inst.d0.AddRow({z0.Sample(rng)});
  for (int64_t i = 0; i < n1; ++i) inst.d1.AddRow({z1.Sample(rng)});
  inst.fd0 = HashJoin(inst.fact, inst.d0, k0, nullptr).num_rows();
  inst.fd1 = HashJoin(inst.fact, inst.d1, k1, nullptr).num_rows();
  return inst;
}

}  // namespace

int main() {
  const int64_t kDomain = 4096;
  AttrCatalog catalog;
  const AttrId k0 = catalog.Register("k0", kDomain);
  const AttrId k1 = catalog.Register("k1", kDomain);
  const int kInstances = 40;

  std::vector<Instance> instances;
  for (int i = 0; i < kInstances; ++i) {
    instances.push_back(MakeInstance(k0, k1, kDomain, 1000 + i));
  }

  std::printf("== Extension: plan choice under approximate statistics ==\n");
  std::printf("%d Zipf instances; decision: join the dimension with the "
              "smaller intermediate first\n\n",
              kInstances);
  std::printf("%8s %10s | %12s %14s\n", "width", "memory", "right plan",
              "mean regret");
  for (int64_t width : {1, 4, 16, 64, 256, 1024}) {
    int right = 0;
    double regret_sum = 0.0;
    int64_t memory = 0;
    for (const Instance& inst : instances) {
      const ApproxHistogram hf0 =
          ApproxHistogram::FromTable(inst.fact, k0, kDomain, width);
      const ApproxHistogram hf1 =
          ApproxHistogram::FromTable(inst.fact, k1, kDomain, width);
      const ApproxHistogram hd0 =
          ApproxHistogram::FromTable(inst.d0, k0, kDomain, width);
      const ApproxHistogram hd1 =
          ApproxHistogram::FromTable(inst.d1, k1, kDomain, width);
      memory = hf0.MemoryUnits() + hf1.MemoryUnits() + hd0.MemoryUnits() +
               hd1.MemoryUnits();
      const double est0 = ApproxHistogram::EstimateJoinCardinality(hf0, hd0);
      const double est1 = ApproxHistogram::EstimateJoinCardinality(hf1, hd1);
      const bool approx_first_d0 = est0 <= est1;
      const bool exact_first_d0 = inst.fd0 <= inst.fd1;
      if (approx_first_d0 == exact_first_d0) {
        ++right;
      } else {
        // Regret: extra intermediate rows relative to the better plan.
        const double chosen = static_cast<double>(
            approx_first_d0 ? inst.fd0 : inst.fd1);
        const double best = static_cast<double>(
            exact_first_d0 ? inst.fd0 : inst.fd1);
        regret_sum += (chosen - best) / (best + 1.0);
      }
    }
    std::printf("%8lld %10lld | %10d/%d %13.1f%%\n",
                static_cast<long long>(width),
                static_cast<long long>(memory), right, kInstances,
                100.0 * regret_sum / kInstances);
  }
  std::printf("\nshape: plan choice survives far coarser statistics than "
              "point estimates do —\nthe comparison only flips near ties, "
              "where regret is small anyway.\n");
  return 0;
}
