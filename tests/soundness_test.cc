// Soundness tests for the closure semantics under cyclic CSS support
// (DESIGN.md §5): union-division lets statistics on *larger* SEs support
// statistics on smaller ones, so the CSS graph can contain cycles. The
// paper's y/z LP constraints alone would admit circularly-supported
// "computable" sets; the closure (and the ILP's incumbent filter built on
// it) must not.

#include <gtest/gtest.h>

#include "css/generator.h"
#include "opt/closure.h"
#include "opt/greedy_selector.h"
#include "opt/ilp_selector.h"
#include "test_util.h"

namespace etlopt {
namespace {

// A hand-built catalog with a 2-cycle: A <- {B} and B <- {A}, plus a
// required stat covered by A.
CssCatalog CyclicCatalog(std::vector<StatKey>* keys) {
  CssCatalog catalog;
  keys->clear();
  keys->push_back(StatKey::Card(0b001));  // 0: A
  keys->push_back(StatKey::Card(0b010));  // 1: B
  keys->push_back(StatKey::Card(0b100));  // 2: required target
  for (const StatKey& k : *keys) catalog.AddStat(k);
  auto add = [&](int target, std::vector<int> inputs) {
    CssEntry e;
    e.rule = RuleId::kJ1;
    e.target = (*keys)[static_cast<size_t>(target)];
    for (int i : inputs) e.inputs.push_back((*keys)[static_cast<size_t>(i)]);
    catalog.AddCss(std::move(e));
  };
  add(0, {1});  // A <- {B}
  add(1, {0});  // B <- {A}
  add(2, {0});  // target <- {A}
  return catalog;
}

TEST(CyclicSoundnessTest, ClosureRejectsCircularSupport) {
  std::vector<StatKey> keys;
  const CssCatalog catalog = CyclicCatalog(&keys);
  // Nothing observed: the A<->B cycle must NOT bootstrap itself.
  std::vector<char> observed(3, 0);
  const std::vector<char> computable = ComputeClosure(catalog, observed);
  EXPECT_FALSE(computable[0]);
  EXPECT_FALSE(computable[1]);
  EXPECT_FALSE(computable[2]);
}

TEST(CyclicSoundnessTest, ClosureAcceptsGroundedSupport) {
  std::vector<StatKey> keys;
  const CssCatalog catalog = CyclicCatalog(&keys);
  std::vector<char> observed(3, 0);
  observed[1] = 1;  // observe B: A <- {B}, target <- {A}
  const std::vector<char> computable = ComputeClosure(catalog, observed);
  EXPECT_TRUE(computable[0]);
  EXPECT_TRUE(computable[1]);
  EXPECT_TRUE(computable[2]);
}

TEST(CyclicSoundnessTest, SelectorsRefuseFreeCyclicCover) {
  std::vector<StatKey> keys;
  const CssCatalog catalog = CyclicCatalog(&keys);
  SelectionProblem problem;
  problem.catalog = &catalog;
  problem.cost = {5.0, 7.0, 100.0};
  problem.observable = {1, 1, 1};
  problem.required = {0, 0, 1};
  // A sound selector must observe at least one of A/B (the cheaper: A at 5)
  // or the target directly; the LP's y/z relaxation alone would claim the
  // A<->B cycle covers everything at cost 0.
  const SelectionResult greedy = SelectGreedy(problem);
  ASSERT_TRUE(greedy.feasible);
  EXPECT_TRUE(SelectionCovers(problem, greedy.observed));
  EXPECT_GE(greedy.total_cost, 5.0);

  const SelectionResult ilp = SelectIlp(problem);
  ASSERT_TRUE(ilp.feasible);
  EXPECT_TRUE(SelectionCovers(problem, ilp.observed));
  EXPECT_NEAR(ilp.total_cost, 5.0, 1e-9);  // observe A

  const SelectionResult brute = SelectExhaustive(problem);
  ASSERT_TRUE(brute.feasible);
  EXPECT_NEAR(brute.total_cost, 5.0, 1e-9);
}

// Real-workflow cycle: union-division creates Hist(full SE) -> Card(sub SE)
// edges while J1/J2 create sub -> full edges. Verify the real catalogs stay
// sound: closing over NOTHING observed yields nothing computable.
TEST(CyclicSoundnessTest, RealCatalogsHaveNoSelfSupport) {
  auto ex = testing_util::MakePaperExample();
  const std::vector<Block> blocks = PartitionBlocks(ex.workflow);
  const BlockContext ctx =
      BlockContext::Build(&ex.workflow, blocks[0]).value();
  const PlanSpace ps = PlanSpace::Build(ctx).value();
  const CssCatalog catalog = GenerateCss(ctx, ps, {});
  std::vector<char> nothing(static_cast<size_t>(catalog.num_stats()), 0);
  const std::vector<char> computable = ComputeClosure(catalog, nothing);
  for (int s = 0; s < catalog.num_stats(); ++s) {
    EXPECT_FALSE(computable[static_cast<size_t>(s)])
        << catalog.stat(s).ToString();
  }
}

TEST(CyclicSoundnessTest, IlpIncumbentFilterBlocksCyclicSolutions) {
  // The ILP must not return a 0-cost solution for the cyclic catalog even
  // though its y/z constraints admit one: the incumbent filter (closure
  // check + no-good cuts) forces a grounded observation.
  std::vector<StatKey> keys;
  const CssCatalog catalog = CyclicCatalog(&keys);
  SelectionProblem problem;
  problem.catalog = &catalog;
  problem.cost = {5.0, 7.0, 100.0};
  problem.observable = {1, 1, 1};
  problem.required = {0, 0, 1};
  const SelectionResult ilp = SelectIlp(problem);
  EXPECT_GT(ilp.total_cost, 0.0);
}

}  // namespace
}  // namespace etlopt
