// Tests for the plan-regression guard: the adoption gate (evidence-scored
// plan replacement), the runtime estimate monitors (observed vs priced
// cardinalities at tap points), the ledger guard section, and the two
// satellite hardenings — calibration overlay validation and estimator
// derivation clamping.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "core/lifecycle.h"
#include "core/pipeline.h"
#include "estimator/estimator.h"
#include "obs/calibrate.h"
#include "obs/guard.h"
#include "obs/ledger.h"
#include "obs/run_report.h"
#include "stats/histogram.h"
#include "test_util.h"
#include "util/fault.h"
#include "util/random.h"

namespace etlopt {
namespace {

std::string TempPath(const std::string& name) {
  // Pid-qualified so the sanitizer twin of this suite can run under the
  // same ctest invocation without clobbering this process's files.
  const std::string path =
      ::testing::TempDir() + std::to_string(getpid()) + "_" + name;
  std::remove(path.c_str());
  return path;
}

// The SE mask of Orders ⋈ Product in the paper example's single block
// (relations indexed in source order: R0=Orders, R1=Product, R2=Customer).
constexpr RelMask kOrdersProduct = 0b011;

obs::GuardInputs ChangedPlanInputs(double confidence = 1.0) {
  obs::GuardInputs inputs;
  inputs.plan_changed = true;
  inputs.initial_cost = 1000.0;
  inputs.optimized_cost = 600.0;
  inputs.proposed_signature = "abcd1234";
  obs::SeEvidence ev;
  ev.block = 0;
  ev.se = kOrdersProduct;
  ev.confidence = confidence;
  inputs.evidence.push_back(ev);
  return inputs;
}

// ---- adoption gate unit tests ----

TEST(EvaluateAdoptionTest, OffModeAlwaysAdopts) {
  obs::GuardOptions options;
  options.mode = obs::GuardMode::kOff;
  const obs::GuardVerdict verdict =
      obs::EvaluateAdoption(options, ChangedPlanInputs(0.0));
  EXPECT_TRUE(verdict.adopt);
  EXPECT_TRUE(verdict.reasons.empty());
}

TEST(EvaluateAdoptionTest, StrongEvidenceAdoptsInStrict) {
  obs::GuardOptions options;
  options.mode = obs::GuardMode::kStrict;
  const obs::GuardVerdict verdict =
      obs::EvaluateAdoption(options, ChangedPlanInputs(1.0));
  EXPECT_TRUE(verdict.adopt);
  EXPECT_TRUE(verdict.reasons.empty());
  EXPECT_DOUBLE_EQ(verdict.evidence_score, 1.0);
  EXPECT_DOUBLE_EQ(verdict.margin, 0.4);
}

TEST(EvaluateAdoptionTest, WeakEvidenceRejectsInStrictButNotWarn) {
  obs::GuardOptions options;
  options.mode = obs::GuardMode::kStrict;
  const obs::GuardVerdict strict =
      obs::EvaluateAdoption(options, ChangedPlanInputs(0.4));
  EXPECT_FALSE(strict.adopt);
  ASSERT_FALSE(strict.reasons.empty());
  EXPECT_DOUBLE_EQ(strict.evidence_score, 0.4);

  options.mode = obs::GuardMode::kWarn;
  const obs::GuardVerdict warn =
      obs::EvaluateAdoption(options, ChangedPlanInputs(0.4));
  EXPECT_TRUE(warn.adopt);  // warn records the failure but adopts
  EXPECT_FALSE(warn.reasons.empty());
}

TEST(EvaluateAdoptionTest, MinEvidenceIsTheMinOverSes) {
  obs::GuardOptions options;
  options.mode = obs::GuardMode::kStrict;
  obs::GuardInputs inputs = ChangedPlanInputs(1.0);
  obs::SeEvidence weak;
  weak.block = 0;
  weak.se = 0b111;
  weak.confidence = 0.3;
  inputs.evidence.push_back(weak);
  const obs::GuardVerdict verdict = obs::EvaluateAdoption(options, inputs);
  EXPECT_FALSE(verdict.adopt);
  EXPECT_DOUBLE_EQ(verdict.evidence_score, 0.3);
}

TEST(EvaluateAdoptionTest, NegativeMarginRejectsInStrict) {
  obs::GuardOptions options;
  options.mode = obs::GuardMode::kStrict;
  obs::GuardInputs inputs = ChangedPlanInputs(1.0);
  inputs.optimized_cost = 1200.0;  // predicted WORSE than the designed plan
  const obs::GuardVerdict verdict = obs::EvaluateAdoption(options, inputs);
  EXPECT_FALSE(verdict.adopt);
  EXPECT_LT(verdict.margin, 0.0);
}

TEST(EvaluateAdoptionTest, UnsafeSignatureRejectsOutright) {
  obs::GuardOptions options;
  options.mode = obs::GuardMode::kStrict;
  obs::GuardInputs inputs = ChangedPlanInputs(1.0);
  inputs.unsafe_signatures.push_back("abcd1234");  // == proposed_signature
  const obs::GuardVerdict verdict = obs::EvaluateAdoption(options, inputs);
  EXPECT_FALSE(verdict.adopt);
  ASSERT_FALSE(verdict.reasons.empty());
}

TEST(EvaluateAdoptionTest, UnchangedPlanIsTriviallyAdoptable) {
  obs::GuardOptions options;
  options.mode = obs::GuardMode::kStrict;
  obs::GuardInputs inputs = ChangedPlanInputs(0.1);  // terrible evidence
  inputs.plan_changed = false;  // but nothing to regress to
  const obs::GuardVerdict verdict = obs::EvaluateAdoption(options, inputs);
  EXPECT_TRUE(verdict.adopt);
  EXPECT_TRUE(verdict.reasons.empty());
}

TEST(EvaluateAdoptionTest, PartialHistoryPenalizesEvidence) {
  obs::GuardOptions options;
  options.mode = obs::GuardMode::kStrict;
  obs::GuardInputs inputs = ChangedPlanInputs(1.0);
  inputs.partial_history = true;  // selection seeded from a salvaged prefix
  const obs::GuardVerdict verdict = obs::EvaluateAdoption(options, inputs);
  EXPECT_FALSE(verdict.adopt);  // 1.0 * 0.5 partial penalty < 0.6
  EXPECT_DOUBLE_EQ(verdict.evidence_score, 0.5);
}

TEST(EvaluateAdoptionTest, CalibrationCoverageScalesEvidence) {
  obs::GuardOptions options;
  options.mode = obs::GuardMode::kStrict;
  obs::GuardInputs inputs = ChangedPlanInputs(1.0);
  inputs.calibration_coverage = 0.0;  // cost model priced nothing measured
  const obs::GuardVerdict verdict = obs::EvaluateAdoption(options, inputs);
  EXPECT_FALSE(verdict.adopt);  // 1.0 * (0.5 + 0.5*0) = 0.5 < 0.6
  EXPECT_DOUBLE_EQ(verdict.evidence_score, 0.5);
}

TEST(CalibrationCoverageTest, WeightsFittedClasses) {
  obs::CostCalibration cal;
  cal.classes["Join"].ns_per_row = 12.0;
  obs::RunProfile profile;
  obs::OpProfile join;
  join.op = "Join";
  join.rows_in = 300;
  obs::OpProfile filter;
  filter.op = "Filter";
  filter.rows_in = 100;
  profile.ops = {join, filter};
  EXPECT_DOUBLE_EQ(obs::CalibrationCoverage(cal, profile), 0.75);
  EXPECT_DOUBLE_EQ(obs::CalibrationCoverage(obs::CostCalibration{}, profile),
                   1.0);  // calibration not in play
  EXPECT_DOUBLE_EQ(obs::CalibrationCoverage(cal, obs::RunProfile{}), 1.0);
}

// ---- guard record serialization ----

TEST(GuardRecordTest, JsonRoundTrip) {
  obs::GuardRecord record;
  record.mode = "strict";
  record.adopted = false;
  record.fell_back = true;
  record.evidence = 0.42;
  record.margin = -0.1;
  record.proposed_signature = "feedf00d";
  record.reasons = {"evidence 0.42 below minimum 0.6"};
  obs::GuardRecord::Monitor m;
  m.block = 0;
  m.se = kOrdersProduct;
  m.node = 3;
  m.expected = 10.0;
  m.actual = 305.0;
  m.qerror = 30.5;
  record.violations.push_back(m);
  record.plan_unsafe = true;
  record.unsafe_signature = "deadbeef";

  const obs::GuardRecord parsed = obs::GuardRecord::FromJson(record.ToJson());
  EXPECT_EQ(parsed.mode, "strict");
  EXPECT_FALSE(parsed.adopted);
  EXPECT_TRUE(parsed.fell_back);
  EXPECT_DOUBLE_EQ(parsed.evidence, 0.42);
  EXPECT_DOUBLE_EQ(parsed.margin, -0.1);
  EXPECT_EQ(parsed.proposed_signature, "feedf00d");
  ASSERT_EQ(parsed.reasons.size(), 1u);
  ASSERT_EQ(parsed.violations.size(), 1u);
  EXPECT_EQ(parsed.violations[0].se, kOrdersProduct);
  EXPECT_DOUBLE_EQ(parsed.violations[0].qerror, 30.5);
  EXPECT_TRUE(parsed.plan_unsafe);
  EXPECT_EQ(parsed.unsafe_signature, "deadbeef");
}

TEST(GuardRecordTest, LedgerLineCarriesGuardOnlyWhenEngaged) {
  obs::RunRecord clean;
  clean.run_id = "run-1";
  clean.guard.mode = "warn";  // mode alone does not engage the section
  EXPECT_EQ(clean.ToJsonLine().find("\"guard\""), std::string::npos);

  obs::RunRecord flagged = clean;
  flagged.guard.fell_back = true;
  flagged.guard.proposed_signature = "feedf00d";
  const std::string line = flagged.ToJsonLine();
  EXPECT_NE(line.find("\"guard\""), std::string::npos);
  const obs::RunRecord parsed = obs::RunRecord::FromJsonLine(line).value();
  EXPECT_TRUE(parsed.guard.fell_back);
  EXPECT_EQ(parsed.guard.proposed_signature, "feedf00d");
}

// ---- end-to-end: corrupted statistic, worse plan, guard verdicts ----

class GuardPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(fault::FaultInjector::InstallGlobal("").ok());
  }
  void TearDown() override {
    ASSERT_TRUE(fault::FaultInjector::InstallGlobal("").ok());
  }

  static PipelineOptions GuardedOptions(obs::GuardMode mode) {
    PipelineOptions options;
    options.guard = obs::GuardOptions{};  // fixed defaults, env ignored
    options.guard.mode = mode;
    return options;
  }
};

TEST_F(GuardPipelineTest, CorruptedStatStrictKeepsDesignedPlanOffAdopts) {
  auto ex = testing_util::MakePaperExample();
  Pipeline strict(GuardedOptions(obs::GuardMode::kStrict));

  // Run 1: clean cycle establishes ledger history.
  const CycleOutcome first = strict.RunCycle(ex.workflow, ex.sources).value();
  ASSERT_FALSE(first.aborted());
  EXPECT_TRUE(first.opt.guard.adopted);
  EXPECT_FALSE(first.opt.guard.engaged());  // clean run: nothing recorded
  std::vector<obs::RunRecord> history{MakeRunRecord(first, "run-1")};

  // Run 2: corrupt the observed |Orders ⋈ Product| before re-optimization —
  // the inflated estimate makes the optimizer propose joining Customer
  // first, a plan that is worse under the true statistics.
  const auto analysis = strict.Analyze(ex.workflow).value();
  RunOutcome run =
      strict.RunAndObserve(*analysis, ex.sources, &history).value();
  const StatKey key = StatKey::Card(kOrdersProduct);
  const StatValue* observed = run.block_stats[0].Find(key);
  ASSERT_NE(observed, nullptr);
  const int64_t true_rows = observed->count();
  run.block_stats[0].Set(key, StatValue::Count(true_rows * 200));

  const OptimizeOutcome gated =
      strict.Optimize(*analysis, run, &history).value();
  EXPECT_TRUE(gated.guard.fell_back);
  EXPECT_FALSE(gated.guard.adopted);
  EXPECT_LT(gated.guard.evidence, 0.6);  // drift halved the SE confidence
  EXPECT_FALSE(gated.guard.reasons.empty());
  EXPECT_FALSE(gated.guard.proposed_signature.empty());
  // The designed plan keeps running, at the designed plan's cost.
  EXPECT_EQ(gated.optimized.ToString(), analysis->workflow->ToString());
  EXPECT_DOUBLE_EQ(gated.optimized_cost, gated.initial_cost);

  // --guard=off adopts the regressed proposal unconditionally.
  Pipeline off(GuardedOptions(obs::GuardMode::kOff));
  const OptimizeOutcome adopted = off.Optimize(*analysis, run, &history).value();
  EXPECT_FALSE(adopted.guard.fell_back);
  EXPECT_NE(adopted.optimized.ToString(), analysis->workflow->ToString());
  // The proposal really is a different join order, priced from the
  // corrupted statistic.
  EXPECT_EQ(obs::FingerprintWorkflow(adopted.optimized),
            gated.guard.proposed_signature);

  // warn mode records the same failing criteria but adopts anyway.
  Pipeline warn(GuardedOptions(obs::GuardMode::kWarn));
  const OptimizeOutcome warned =
      warn.Optimize(*analysis, run, &history).value();
  EXPECT_TRUE(warned.guard.adopted);
  EXPECT_FALSE(warned.guard.fell_back);
  EXPECT_FALSE(warned.guard.reasons.empty());

  // The fallback verdict survives the ledger, and the offline report flags
  // the run.
  obs::RunRecord record = MakeRunRecord(first, "run-2");
  record.guard = gated.guard;
  const obs::RunRecord parsed =
      obs::RunRecord::FromJsonLine(record.ToJsonLine()).value();
  EXPECT_TRUE(parsed.guard.fell_back);
  const std::string report =
      obs::FormatRunReportMarkdown({history[0], parsed}, {});
  EXPECT_NE(report.find("guard-fallback"), std::string::npos);
  EXPECT_NE(report.find("fell back to the designed plan"), std::string::npos);
}

TEST_F(GuardPipelineTest, PartialHistoryBlocksAdoptionInStrict) {
  auto ex = testing_util::MakePaperExample();
  Pipeline strict(GuardedOptions(obs::GuardMode::kStrict));

  // Run 1 crashes mid-join: its record is partial, and the salvage seeds
  // the next cycle's cost model with low-confidence feedback.
  ASSERT_TRUE(
      fault::FaultInjector::InstallGlobal("seed=13;op:join4:crash").ok());
  const CycleOutcome crashed = strict.RunCycle(ex.workflow, ex.sources).value();
  ASSERT_TRUE(crashed.aborted());
  std::vector<obs::RunRecord> history{MakeRunRecord(crashed, "run-1")};
  ASSERT_TRUE(history[0].partial);
  ASSERT_TRUE(fault::FaultInjector::InstallGlobal("").ok());

  // Run 2 completes, but a changed plan cannot clear the partial-history
  // penalty (1.0 * 0.5 < 0.6): strict keeps the designed plan.
  const CycleOutcome second =
      strict.RunCycle(ex.workflow, ex.sources, &history).value();
  ASSERT_FALSE(second.aborted());
  EXPECT_TRUE(second.opt.guard.fell_back);
  EXPECT_DOUBLE_EQ(second.opt.optimized_cost, second.opt.initial_cost);
}

TEST_F(GuardPipelineTest, SketchBackedRunsStillAdoptWithReducedEvidence) {
  auto ex = testing_util::MakePaperExample();
  PipelineOptions options = GuardedOptions(obs::GuardMode::kStrict);
  options.tap_memory_budget_bytes = 256;  // force sketch collection
  // At this budget the compounded sketch error bounds push the evidence to
  // ~0.53 — below the default 0.6 floor, which is exactly the designed
  // behavior (heavy approximation is weak evidence). Lower the floor so
  // the test can observe "reduced but sufficient" adoption.
  options.guard.min_evidence = 0.4;
  Pipeline pipeline(options);

  const CycleOutcome first = pipeline.RunCycle(ex.workflow, ex.sources).value();
  ASSERT_FALSE(first.aborted());
  ASSERT_GT(first.run.tap_report.sketch_taps, 0);
  // Sketch error bounds reduce the evidence below exact-collection's 1.0.
  EXPECT_LT(first.opt.guard.evidence, 1.0);
  EXPECT_TRUE(first.opt.guard.adopted);
  std::vector<obs::RunRecord> history{MakeRunRecord(first, "run-1")};

  // Run 2 over identical data: sketch-widened drift tolerance means the
  // re-observed values do not read as drift, and the verdict stays adopt.
  const CycleOutcome second =
      pipeline.RunCycle(ex.workflow, ex.sources, &history).value();
  ASSERT_FALSE(second.aborted());
  EXPECT_TRUE(second.opt.guard.adopted);
  EXPECT_FALSE(second.opt.guard.fell_back);
}

// ---- runtime estimate monitors ----

class GuardMonitorTest : public GuardPipelineTest {
 protected:
  // A clean history record whose recorded estimate for Orders ⋈ Product is
  // tampered far below the observed cardinality, so the monitors at that
  // node must fire on the next run.
  static std::vector<obs::RunRecord> TamperedHistory(
      Pipeline& pipeline, const testing_util::PaperExample& ex) {
    const CycleOutcome first =
        pipeline.RunCycle(ex.workflow, ex.sources).value();
    obs::RunRecord record = MakeRunRecord(first, "run-1");
    bool tampered = false;
    for (obs::RunRecord::SeCard& card : record.cards) {
      if (card.se == kOrdersProduct) {
        card.estimated = 1.0;
        tampered = true;
      }
    }
    EXPECT_TRUE(tampered);
    return {record};
  }
};

TEST_F(GuardMonitorTest, ViolationAbortsStrictRunThroughSalvage) {
  auto ex = testing_util::MakePaperExample();
  Pipeline strict(GuardedOptions(obs::GuardMode::kStrict));
  std::vector<obs::RunRecord> history = TamperedHistory(strict, ex);

  const CycleOutcome caught =
      strict.RunCycle(ex.workflow, ex.sources, &history).value();
  ASSERT_TRUE(caught.aborted());
  EXPECT_EQ(caught.run.exec.abort_kind, AbortKind::kGuard);
  ASSERT_FALSE(caught.opt.guard.violations.empty());
  EXPECT_EQ(caught.opt.guard.violations[0].se, kOrdersProduct);
  EXPECT_GT(caught.opt.guard.violations[0].qerror, 4.0);
  EXPECT_TRUE(caught.opt.guard.plan_unsafe);
  EXPECT_EQ(caught.opt.guard.unsafe_signature, history[0].plan_signature);
  // The salvage path still ran: partial statistics were observed.
  EXPECT_FALSE(caught.run.block_stats.empty());

  const obs::RunRecord record = MakeRunRecord(caught, "run-2");
  EXPECT_TRUE(record.partial);
  EXPECT_TRUE(record.guard.plan_unsafe);

  // The next cycle skips the condemned record when arming monitors (no
  // abort loop), force-observes the flagged SE, and completes.
  history.push_back(record);
  const CycleOutcome recovered =
      strict.RunCycle(ex.workflow, ex.sources, &history).value();
  EXPECT_FALSE(recovered.aborted());
}

TEST_F(GuardMonitorTest, WarnModeRecordsViolationWithoutAborting) {
  auto ex = testing_util::MakePaperExample();
  Pipeline warn(GuardedOptions(obs::GuardMode::kWarn));
  std::vector<obs::RunRecord> history = TamperedHistory(warn, ex);

  const CycleOutcome cycle =
      warn.RunCycle(ex.workflow, ex.sources, &history).value();
  ASSERT_FALSE(cycle.aborted());  // warn observes, never aborts
  ASSERT_FALSE(cycle.opt.guard.violations.empty());
  EXPECT_TRUE(cycle.opt.guard.plan_unsafe);
  EXPECT_EQ(cycle.opt.guard.unsafe_signature, history[0].plan_signature);
  // The report surfaces the unsafe plan.
  obs::RunRecord record = MakeRunRecord(cycle, "run-2");
  const std::string report =
      obs::FormatRunReportMarkdown({history[0], record}, {});
  EXPECT_NE(report.find("plan-unsafe"), std::string::npos);
}

TEST_F(GuardMonitorTest, VerdictIsIdenticalAcrossWorkerCounts) {
  auto ex = testing_util::MakePaperExample();
  Pipeline serial(GuardedOptions(obs::GuardMode::kWarn));
  std::vector<obs::RunRecord> history = TamperedHistory(serial, ex);

  const CycleOutcome serial_cycle =
      serial.RunCycle(ex.workflow, ex.sources, &history).value();

  PipelineOptions par_options = GuardedOptions(obs::GuardMode::kWarn);
  par_options.num_threads = 4;
  Pipeline parallel(par_options);
  const CycleOutcome par_cycle =
      parallel.RunCycle(ex.workflow, ex.sources, &history).value();

  // The parallel executor checks monitors against gathered (merged) node
  // outputs, so the violations — and the verdict — match the serial run's.
  ASSERT_EQ(par_cycle.opt.guard.violations.size(),
            serial_cycle.opt.guard.violations.size());
  for (size_t i = 0; i < par_cycle.opt.guard.violations.size(); ++i) {
    EXPECT_EQ(par_cycle.opt.guard.violations[i].se,
              serial_cycle.opt.guard.violations[i].se);
    EXPECT_DOUBLE_EQ(par_cycle.opt.guard.violations[i].actual,
                     serial_cycle.opt.guard.violations[i].actual);
    EXPECT_DOUBLE_EQ(par_cycle.opt.guard.violations[i].qerror,
                     serial_cycle.opt.guard.violations[i].qerror);
  }
  EXPECT_EQ(par_cycle.opt.guard.plan_unsafe,
            serial_cycle.opt.guard.plan_unsafe);
  EXPECT_EQ(par_cycle.opt.guard.adopted, serial_cycle.opt.guard.adopted);
}

TEST_F(GuardPipelineTest, LifecycleGateKeepsDesignedPlanOnPartialHistory) {
  auto ex = testing_util::MakePaperExample();
  PipelineOptions options = GuardedOptions(obs::GuardMode::kStrict);

  ASSERT_TRUE(
      fault::FaultInjector::InstallGlobal("seed=13;op:join4:crash").ok());
  const BudgetedLifecycleResult crashed =
      RunBudgetedLifecycle(ex.workflow, ex.sources, 1e9, options).value();
  ASSERT_TRUE(crashed.aborted());
  ASSERT_TRUE(fault::FaultInjector::InstallGlobal("").ok());

  // Fabricate the partial ledger record the caller would have appended.
  obs::RunRecord partial_record;
  partial_record.partial = true;
  partial_record.completion = crashed.completion;
  partial_record.block_stats = crashed.block_stats;
  for (size_t b = 0; b < crashed.block_cards.size(); ++b) {
    for (const auto& [se, rows] : crashed.block_cards[b]) {
      obs::RunRecord::SeCard card;
      card.block = static_cast<int>(b);
      card.se = se;
      card.actual = static_cast<double>(rows);
      partial_record.cards.push_back(card);
    }
  }
  std::vector<obs::RunRecord> history{partial_record};

  const BudgetedLifecycleResult gated =
      RunBudgetedLifecycle(ex.workflow, ex.sources, 1e9, options, &history)
          .value();
  ASSERT_FALSE(gated.aborted());
  EXPECT_TRUE(gated.guard.fell_back);
  EXPECT_EQ(gated.optimized.ToString(), ex.workflow.ToString());
  EXPECT_DOUBLE_EQ(gated.optimized_cost, gated.initial_cost);

  // Off mode on the same inputs adopts.
  PipelineOptions off = GuardedOptions(obs::GuardMode::kOff);
  const BudgetedLifecycleResult adopted =
      RunBudgetedLifecycle(ex.workflow, ex.sources, 1e9, off, &history)
          .value();
  EXPECT_FALSE(adopted.guard.fell_back);
}

// ---- satellite 1: calibration overlay validation ----

TEST(CalibrationValidationTest, RejectsBadClassFits) {
  const struct {
    const char* name;
    double ns_per_row;
    int64_t rows;
    int64_t ns;
  } kBadShapes[] = {
      {"nan ns_per_row", std::nan(""), 10, 100},
      {"inf ns_per_row", std::numeric_limits<double>::infinity(), 10, 100},
      {"negative ns_per_row", -3.5, 10, 100},
      {"negative rows", 10.0, -1, 100},
      {"negative ns", 10.0, 10, -100},
  };
  for (const auto& shape : kBadShapes) {
    SCOPED_TRACE(shape.name);
    Json fit = Json::Object();
    fit.Set("rows", Json::Int(shape.rows));
    fit.Set("ns", Json::Int(shape.ns));
    fit.Set("ns_per_row", Json::Double(shape.ns_per_row));
    Json classes = Json::Object();
    classes.Set("Join", std::move(fit));
    Json j = Json::Object();
    j.Set("runs", Json::Int(1));
    j.Set("classes", std::move(classes));
    const Result<obs::CostCalibration> parsed =
        obs::CostCalibration::FromJson(j);
    EXPECT_FALSE(parsed.ok());
  }
}

TEST(CalibrationValidationTest, AcceptsWellFormedOverlayRoundTrip) {
  obs::CostCalibration cal;
  cal.runs = 2;
  cal.classes["Join"] = {300, 6000, 20.0};
  cal.classes["tap"] = {100, 500, 5.0};
  const Result<obs::CostCalibration> parsed =
      obs::CostCalibration::FromJson(cal.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_DOUBLE_EQ(parsed->NsPerRow("Join"), 20.0);
}

TEST(CalibrationValidationTest, LoadFailsOnMalformedFile) {
  const std::string path = TempPath("bad_calibration.json");
  std::ofstream(path) << "{\"runs\":1,\"classes\":{\"Join\":{\"rows\":10,"
                         "\"ns\":100,\"ns_per_row\":-5.0}}}";
  const Result<obs::CostCalibration> loaded =
      obs::CostCalibration::Load(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

// ---- satellite 2: estimator derivation clamping ----

TEST(HistogramDivideByClampedTest, RepairsInvariantViolations) {
  Histogram a(0b1);
  a.Add1(1, 10);
  a.Add1(2, 7);
  a.Add1(3, -4);  // negative numerator bucket
  Histogram b(0b1);
  b.Add1(1, 2);   // exact: 10 / 2 = 5
  b.Add1(2, 3);   // non-exact: 7 / 3 rounds to 2
  // value 3 missing from b: zero divisor, numerator passes through

  int64_t clamped = 0;
  const Histogram q = Histogram::DivideByClamped(a, b, &clamped);
  EXPECT_EQ(q.Get1(1), 5);
  EXPECT_EQ(q.Get1(2), 2);
  EXPECT_EQ(q.Get1(3), 0);  // clamped, not -4
  // Three repairs: the rounding on bucket 2, and bucket 3's negative
  // numerator plus its missing divisor (each counted separately).
  EXPECT_EQ(clamped, 3);
}

TEST(HistogramDivideByClampedTest, MatchesDivideByOnCleanInputs) {
  Histogram a(0b1);
  a.Add1(1, 12);
  a.Add1(2, 8);
  Histogram b(0b1);
  b.Add1(1, 4);
  b.Add1(2, 2);
  int64_t clamped = 0;
  const Histogram repaired = Histogram::DivideByClamped(a, b, &clamped);
  const Histogram exact = Histogram::DivideBy(a, b);
  EXPECT_EQ(clamped, 0);
  EXPECT_TRUE(repaired == exact);
}

TEST(EstimatorClampTest, CorruptedObservationsNeverYieldNanOrNegative) {
  auto ex = testing_util::MakePaperExample();
  Pipeline pipeline;
  const auto analysis = pipeline.Analyze(ex.workflow).value();
  const RunOutcome clean =
      pipeline.RunAndObserve(*analysis, ex.sources).value();
  const BlockAnalysis& ba = *analysis->blocks[0];

  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    SCOPED_TRACE(trial);
    // Corrupt every count-valued observation with zeros, negatives, or
    // wild inflation, chosen per key per trial.
    StatStore corrupted = clean.block_stats[0];
    for (const auto& [key, value] : clean.block_stats[0].values()) {
      if (!value.is_count()) continue;
      switch (rng.NextInRange(0, 3)) {
        case 0:
          corrupted.Set(key, StatValue::Count(0));
          break;
        case 1:
          corrupted.Set(key, StatValue::Count(-value.count()));
          break;
        case 2:
          corrupted.Set(key, StatValue::Count(value.count() * 100000));
          break;
        default:
          break;  // keep the observed value
      }
    }
    Estimator estimator(&ba.ctx, &ba.catalog);
    const Status derived = estimator.DeriveAll(corrupted);
    if (!derived.ok()) continue;  // refusing to derive is acceptable
    for (const auto& [key, value] : estimator.derived().values()) {
      if (value.is_count()) {
        EXPECT_GE(value.count(), 0) << key.ToString();
      }
      if (value.is_approx()) {
        EXPECT_TRUE(std::isfinite(value.rel_error())) << key.ToString();
        EXPECT_GE(value.rel_error(), 0.0) << key.ToString();
      }
    }
    for (RelMask se : ba.plan_space.subexpressions()) {
      const Result<int64_t> card = estimator.Cardinality(se);
      if (card.ok()) {
        EXPECT_GE(*card, 0) << "SE " << se;
      }
    }
  }
}

TEST(EstimatorClampTest, CleanInputsAreNeverClamped) {
  auto ex = testing_util::MakePaperExample();
  Pipeline pipeline;
  const auto analysis = pipeline.Analyze(ex.workflow).value();
  const RunOutcome run = pipeline.RunAndObserve(*analysis, ex.sources).value();
  const BlockAnalysis& ba = *analysis->blocks[0];
  Estimator estimator(&ba.ctx, &ba.catalog);
  ASSERT_TRUE(estimator.DeriveAll(run.block_stats[0]).ok());
  EXPECT_EQ(estimator.clamped_values(), 0);
}

// ---- per-SE confidence ----

TEST(CardinalityConfidenceTest, ExactIsFullSketchAndDriftDegrade) {
  auto ex = testing_util::MakePaperExample();
  Pipeline pipeline;
  const auto analysis = pipeline.Analyze(ex.workflow).value();
  const RunOutcome run = pipeline.RunAndObserve(*analysis, ex.sources).value();
  const BlockAnalysis& ba = *analysis->blocks[0];
  Estimator estimator(&ba.ctx, &ba.catalog);
  ASSERT_TRUE(estimator.DeriveAll(run.block_stats[0]).ok());

  // Exact observation: full confidence.
  EXPECT_DOUBLE_EQ(estimator.CardinalityConfidence(kOrdersProduct), 1.0);

  // A drift-flagged feeding statistic halves it.
  const std::vector<StatKey> distrusted{StatKey::Card(kOrdersProduct)};
  EXPECT_DOUBLE_EQ(
      estimator.CardinalityConfidence(kOrdersProduct, distrusted, 0.5), 0.5);

  // Sketch-backed derivation: confidence shrinks with the error bound.
  StatStore approx = run.block_stats[0];
  const StatValue* v = approx.Find(StatKey::Card(kOrdersProduct));
  ASSERT_NE(v, nullptr);
  approx.Set(StatKey::Card(kOrdersProduct),
             StatValue::CountApprox(v->count(), 0.25));
  Estimator sketchy(&ba.ctx, &ba.catalog);
  ASSERT_TRUE(sketchy.DeriveAll(approx).ok());
  EXPECT_DOUBLE_EQ(sketchy.CardinalityConfidence(kOrdersProduct), 0.8);
}

}  // namespace
}  // namespace etlopt
