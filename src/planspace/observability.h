#ifndef ETLOPT_PLANSPACE_OBSERVABILITY_H_
#define ETLOPT_PLANSPACE_OBSERVABILITY_H_

#include "planspace/block.h"
#include "stats/stat_key.h"

namespace etlopt {

// Whether `key` can be observed by instrumenting the block's *initial* plan
// (Section 3.1, "observable statistic"):
//   - chain-stage statistics are always observable (every chain stage is a
//     pipeline point of every plan);
//   - join-SE statistics require the SE to be on the initial plan's path;
//   - histogram/distinct statistics additionally require their attributes to
//     be present in the schema at that point;
//   - reject-join statistics (union-division inputs) require the L side to
//     be on-path with its next designed join against exactly the relation k
//     (so a reject link can be attached there, Fig. 5) and the R side to be
//     on-path so the side-join can be evaluated.
bool IsObservable(const StatKey& key, const BlockContext& ctx);

}  // namespace etlopt

#endif  // ETLOPT_PLANSPACE_OBSERVABILITY_H_
