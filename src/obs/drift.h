#ifndef ETLOPT_OBS_DRIFT_H_
#define ETLOPT_OBS_DRIFT_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "obs/ledger.h"
#include "stats/stat_key.h"

namespace etlopt {
namespace obs {

// Thresholds for declaring a statistic stale. Defaults are deliberately
// loose — an ETL workflow's sources legitimately grow a little every run;
// drift means the change is large enough that plans chosen from the old
// statistics can no longer be trusted.
struct DriftOptions {
  // |current - ewma| / max(|ewma|, 1) above this flags drift.
  double rel_change_threshold = 0.5;
  // max(cur/ewma, ewma/cur) (clamped >= 1 row) above this flags drift.
  double qerror_threshold = 2.0;
  // EWMA smoothing over history values, newest weighted `alpha`.
  double ewma_alpha = 0.3;
  // Runs of history required before a key can be assessed at all.
  int min_history = 1;
  // Threshold multiplier for statistics that are sketch-collected in the
  // current run or anywhere in their history: an apparent change smaller
  // than the sketches' own error bound is noise, not drift, so both
  // thresholds widen by this factor before comparing.
  double sketch_widen_factor = 2.0;
  // Threshold multiplier applied when the current run or any contributing
  // history record is partial (salvaged from an aborted run): statistics
  // from an incomplete run reflect a prefix of the data, so an apparent
  // change may just be the missing suffix. Stacks with the sketch factor.
  double partial_widen_factor = 2.0;

  // Defaults overridden by ETLOPT_DRIFT_REL_THRESHOLD,
  // ETLOPT_DRIFT_QERROR_THRESHOLD, ETLOPT_DRIFT_EWMA_ALPHA,
  // ETLOPT_DRIFT_SKETCH_WIDEN, and ETLOPT_DRIFT_PARTIAL_WIDEN.
  static DriftOptions FromEnv();
};

// One compared statistic. Histogram-valued statistics compare their total
// count (the row mass under the histogram); count-valued statistics and SE
// actual cardinalities compare directly.
struct DriftFinding {
  int block = 0;
  StatKey key;
  double ewma = 0.0;       // smoothed history value
  double previous = 0.0;   // most recent history value
  double current = 0.0;
  double rel_change = 0.0;
  double qerror = 1.0;
  bool drifted = false;
  int history_runs = 0;
  // True when the current or any history value was sketch-collected; the
  // drift thresholds applied to this key were widened accordingly.
  bool sketch_backed = false;
  // True when the current run or any contributing history run was partial
  // (salvaged after an abort); thresholds were widened accordingly.
  bool partial_backed = false;
};

struct DriftReport {
  std::vector<DriftFinding> findings;  // every compared key, stable order
  // The re-instrumentation recommendation: statistics whose staleness
  // exceeded tolerance, i.e. the taps to re-enable on the next run.
  std::vector<std::pair<int, StatKey>> reinstrument;  // (block, key)

  bool any_drift() const { return !reinstrument.empty(); }
  // Drift status lookup for one (block, key).
  bool IsDrifted(int block, const StatKey& key) const;
  // Flagged keys of one block (the force_observe input for a re-run).
  std::vector<StatKey> ReinstrumentKeys(int block) const;

  std::string ToText(const AttrCatalog* catalog = nullptr) const;
};

// Compares the current run's observed statistics and actual cardinalities
// against ledger history of the same workflow fingerprint.
class DriftDetector {
 public:
  explicit DriftDetector(DriftOptions options = DriftOptions::FromEnv())
      : options_(options) {}

  const DriftOptions& options() const { return options_; }

  // `history` holds prior runs oldest-first (same fingerprint as
  // `current`); keys present in `current` but with fewer than min_history
  // prior values are reported undrifted with history_runs = 0.
  DriftReport Compare(const std::vector<RunRecord>& history,
                      const RunRecord& current) const;

 private:
  DriftOptions options_;
};

// The numeric view of a record that drift detection compares: per block,
// every count-valued observed statistic (histograms as their total count)
// plus every SE actual cardinality under its Card key. Exposed so tests
// and the lifecycle wiring agree on the comparison domain.
std::vector<std::unordered_map<StatKey, double, StatKeyHash>>
NumericStatValues(const RunRecord& record);

// Which of a record's observed statistics were sketch-collected, per block
// (key present -> approximate, value = its relative-error parameter).
std::vector<std::unordered_map<StatKey, double, StatKeyHash>>
SketchRelErrors(const RunRecord& record);

}  // namespace obs
}  // namespace etlopt

#endif  // ETLOPT_OBS_DRIFT_H_
