#include "datagen/table_gen.h"

#include <algorithm>
#include <cmath>
#include <memory>

namespace etlopt {

Table GenerateTable(const AttrCatalog& catalog, const TableSpec& spec,
                    Rng& rng, double row_scale, StringDictionary* dict) {
  ETLOPT_CHECK(row_scale > 0.0 && row_scale <= 1.0);
  const int64_t rows = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(spec.rows * row_scale)));

  std::vector<AttrId> attrs;
  attrs.reserve(spec.columns.size());
  for (const ColumnSpec& col : spec.columns) attrs.push_back(col.attr);

  // Per-column samplers (Zipf CDFs are built once).
  struct Sampler {
    const ColumnSpec* spec;
    int64_t domain;
    int64_t match_upto;
    std::unique_ptr<ZipfDistribution> zipf;
    std::vector<Value> category_ids;  // kCategorical: category index -> id
  };
  std::vector<Sampler> samplers;
  for (const ColumnSpec& col : spec.columns) {
    Sampler s;
    s.spec = &col;
    s.domain = catalog.domain_size(col.attr);
    s.match_upto = std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(col.match_upto * row_scale)));
    switch (col.gen) {
      case ColumnGen::kSequential:
        ETLOPT_CHECK_MSG(rows <= s.domain,
                         "sequential key exceeds attribute domain");
        break;
      case ColumnGen::kZipf:
        s.zipf = std::make_unique<ZipfDistribution>(s.domain, col.zipf_skew);
        break;
      case ColumnGen::kUniform:
        break;
      case ColumnGen::kFkZipf:
        ETLOPT_CHECK_MSG(s.match_upto <= s.domain,
                         "FK match range exceeds attribute domain");
        s.zipf =
            std::make_unique<ZipfDistribution>(s.match_upto, col.zipf_skew);
        break;
      case ColumnGen::kCategorical: {
        ETLOPT_CHECK_MSG(!col.categories.empty(),
                         "categorical column needs categories");
        ETLOPT_CHECK_MSG(
            static_cast<int64_t>(col.categories.size()) <= s.domain,
            "categorical domain exceeds attribute domain");
        s.category_ids.reserve(col.categories.size());
        for (size_t i = 0; i < col.categories.size(); ++i) {
          // First-seen interning in declaration order: id i+1 with or
          // without a dictionary, so the generated Values never depend on
          // whether the caller wants the strings back.
          s.category_ids.push_back(
              dict != nullptr ? dict->Intern(col.categories[i])
                              : static_cast<Value>(i + 1));
        }
        break;
      }
    }
    samplers.push_back(std::move(s));
  }

  // Columns build directly (one contiguous array per attribute), but values
  // are still drawn row-by-row across the samplers — the rng consumption
  // order the row-major builder used, so the data is bit-identical.
  std::vector<ColumnPtr> columns;
  columns.reserve(samplers.size());
  for (size_t c = 0; c < samplers.size(); ++c) {
    auto col = std::make_shared<Column>();
    col->reserve(static_cast<size_t>(rows));
    columns.push_back(std::move(col));
  }
  for (int64_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < samplers.size(); ++c) {
      Sampler& s = samplers[c];
      Value v = 0;
      switch (s.spec->gen) {
        case ColumnGen::kSequential:
          v = r + 1;
          break;
        case ColumnGen::kZipf:
          v = s.zipf->Sample(rng);
          break;
        case ColumnGen::kUniform:
          v = rng.NextInRange(1, s.domain);
          break;
        case ColumnGen::kFkZipf: {
          if (s.match_upto < s.domain &&
              rng.NextDouble() < s.spec->miss_rate) {
            v = rng.NextInRange(s.match_upto + 1, s.domain);  // dangling
          } else {
            v = s.zipf->Sample(rng);
          }
          break;
        }
        case ColumnGen::kCategorical:
          v = s.category_ids[static_cast<size_t>(rng.NextInRange(
                                 1, static_cast<int64_t>(
                                        s.category_ids.size())) -
                             1)];
          break;
      }
      columns[c]->push_back(v);
    }
  }
  return Table::FromColumns(Schema(attrs), std::move(columns), rows);
}

}  // namespace etlopt
