#ifndef ETLOPT_ENGINE_PARALLEL_PARTITION_H_
#define ETLOPT_ENGINE_PARALLEL_PARTITION_H_

#include <cstdint>
#include <vector>

#include "engine/table.h"
#include "etl/types.h"

namespace etlopt {
namespace parallel {

// Deterministic 64-bit mix of a key value (splitmix64 finalizer). Partition
// placement depends only on the value and the partition count — never on
// pointers, thread ids, or iteration order — so repeated runs land every row
// in the same partition and two co-partitioned inputs agree on placement.
uint64_t PartitionHashValue(Value v);

// Partition index of `v` under `num_partitions`-way hash partitioning.
int HashPartitionIndex(Value v, int num_partitions);

// A table split into disjoint slices. `row_index[p][i]` is the position the
// i-th row of slice p held in the original table — the provenance seed the
// parallel executor threads through operator chains so the merge barrier can
// reconstruct the exact serial row order.
struct TablePartitions {
  std::vector<Table> parts;
  std::vector<std::vector<int64_t>> row_index;

  int num_partitions() const { return static_cast<int>(parts.size()); }
  int64_t total_rows() const {
    int64_t total = 0;
    for (const Table& t : parts) total += t.num_rows();
    return total;
  }
};

// Hash-partitions `table` on `attr` (which must be in the schema) into
// `num_partitions` slices. Rows keep their relative order inside each slice.
TablePartitions HashPartition(const Table& table, AttrId attr,
                              int num_partitions);

// Range-partitions `table` on `attr`: slice p receives rows with
// value <= upper_bounds[p] (and the last slice everything above the final
// bound), so the caller controls skew directly. Used by the benchmark's
// worst-case-skew scenario; the executor itself partitions by hash.
TablePartitions RangePartition(const Table& table, AttrId attr,
                               const std::vector<Value>& upper_bounds);

// max / mean slice cardinality — the skew statistic surfaced in
// `--obs-summary` (1.0 = perfectly balanced; 0 when all slices are empty).
double PartitionSkew(const TablePartitions& partitions);

}  // namespace parallel
}  // namespace etlopt

#endif  // ETLOPT_ENGINE_PARALLEL_PARTITION_H_
