#ifndef ETLOPT_PLANSPACE_BLOCK_H_
#define ETLOPT_PLANSPACE_BLOCK_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "etl/workflow.h"
#include "planspace/join_graph.h"
#include "util/status.h"

namespace etlopt {

// One input of an optimizable block: a base record-set (a source, or the
// sealed output of an upstream block) with a chain of unary operators above
// it. Chain operators are pinned to their input and never move during join
// reordering; the chain's *top* is what joins see.
struct BlockInput {
  NodeId base = kInvalidNode;
  std::vector<NodeId> chain;  // unary ops in application order

  NodeId top() const { return chain.empty() ? base : chain.back(); }
  // Number of inner stages (stage s output: s == 0 is the base output,
  // s == chain.size() is the top, canonicalized as the singleton join SE).
  int num_inner_stages() const { return static_cast<int>(chain.size()); }
};

// One designed join inside a block, in workflow order. left/right are the
// relation masks the join combines in the *initial* plan.
struct BlockJoin {
  NodeId node = kInvalidNode;
  RelMask left = 0;
  RelMask right = 0;
  AttrId attr = kInvalidAttr;
  bool fk_lookup = false;
  bool reject_link = false;
};

// An optimizable block (Section 3.2.1): joins may be reordered freely within
// a block but never across its boundary.
struct Block {
  int id = 0;
  std::vector<BlockInput> inputs;
  std::vector<BlockJoin> joins;
  NodeId output = kInvalidNode;  // the node whose result leaves the block

  int num_rels() const { return static_cast<int>(inputs.size()); }
  RelMask full_mask() const {
    return num_rels() >= 32 ? ~RelMask{0}
                            : (RelMask{1} << num_rels()) - 1;
  }
};

// Splits a workflow into optimizable blocks. Boundaries (seals) are placed
// after: materialize nodes, aggregate (group-by) nodes, black-box aggregate
// UDFs, joins with designed reject links, joins feeding unary operators
// (keeping all unary ops on input chains), nodes with multiple consumers,
// and transforms whose derived attribute is a downstream join key applied to
// multi-relation intermediates (the Fig. 3 pattern falls out of the
// join-feeding-unary rule).
std::vector<Block> PartitionBlocks(const Workflow& workflow);

// Analysis bundle for one block: resolves relation indices, join graph, and
// schema masks. All statistics machinery (plan space, CSS generation,
// instrumentation) works through this view.
class BlockContext {
 public:
  // Empty context; assign from Build's result before use.
  BlockContext() : graph_(1) {}

  static Result<BlockContext> Build(const Workflow* workflow, Block block);

  const Workflow& workflow() const { return *wf_; }
  const Block& block() const { return block_; }
  const JoinGraph& graph() const { return graph_; }
  const AttrCatalog& catalog() const { return wf_->catalog(); }

  int num_rels() const { return block_.num_rels(); }
  RelMask full_mask() const { return block_.full_mask(); }

  // Attributes available on the join SE `rels` (union of top-stage schemas,
  // join keys deduplicated naturally by masks).
  AttrMask SchemaMask(RelMask rels) const;
  // Attributes available at inner chain stage `stage` of input `rel`.
  AttrMask StageSchemaMask(int rel, int stage) const;

  // Workflow node producing inner chain stage `stage` of input `rel`
  // (stage 0 -> base).
  NodeId StageNode(int rel, int stage) const;
  // Workflow node producing the chain top of input `rel`.
  NodeId TopNode(int rel) const;
  int NumInnerStages(int rel) const {
    return block_.inputs[static_cast<size_t>(rel)].num_inner_stages();
  }

  // The chain operator applied between stage-1 (or base) and `stage`; i.e.
  // the node producing stage `stage`, for stage >= 1. For the top, pass
  // stage == NumInnerStages(rel) + ... — use TopOpNode instead.
  // Chain op producing the *top* from the last inner stage (or base);
  // kInvalidNode when the chain is empty.
  NodeId TopOpNode(int rel) const;

  // On-path join SEs of the initial (designed) plan: mask -> producing node.
  // Contains all singletons and every designed join output.
  const std::unordered_map<RelMask, NodeId>& on_path() const {
    return on_path_;
  }
  bool IsOnPath(RelMask rels) const {
    return on_path_.find(rels) != on_path_.end();
  }

  // In the initial plan, the single relation that SE `rels` is next joined
  // with, or 0 when the next join partner is not a single relation (or
  // `rels` is the full SE). When found and `attr` is non-null, receives the
  // join attribute of that designed join. Used by the union-division rules.
  RelMask InitialNextPartner(RelMask rels, AttrId* attr = nullptr) const;

  std::string RelLabel(int rel) const;

 private:
  const Workflow* wf_ = nullptr;
  Block block_;
  JoinGraph graph_;
  struct Partner {
    RelMask rel = 0;
    AttrId attr = kInvalidAttr;
  };
  std::unordered_map<RelMask, NodeId> on_path_;
  std::unordered_map<RelMask, Partner> next_partner_;
};

}  // namespace etlopt

#endif  // ETLOPT_PLANSPACE_BLOCK_H_
