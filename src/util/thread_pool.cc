#include "util/thread_pool.h"

#include <algorithm>
#include <exception>

namespace etlopt {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      // Submit() tasks have nowhere to report to; ParallelFor wraps its
      // tasks so nothing can reach this handler from there.
    }
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

Status ThreadPool::ParallelFor(int n, const std::function<Status(int)>& fn) {
  if (n <= 0) return Status::OK();
  // Barrier state shared by the n tasks; lives on this (blocked) frame.
  std::mutex done_mu;
  std::condition_variable done_cv;
  int remaining = n;
  int failed_index = n;  // lowest failing index wins, n = none
  Status failure;

  for (int i = 0; i < n; ++i) {
    Submit([&, i] {
      Status status;
      try {
        status = fn(i);
      } catch (const std::exception& e) {
        status = Status::Internal(std::string("task threw: ") + e.what());
      } catch (...) {
        status = Status::Internal("task threw a non-std exception");
      }
      std::lock_guard<std::mutex> lock(done_mu);
      if (!status.ok() && i < failed_index) {
        failed_index = i;
        failure = std::move(status);
      }
      if (--remaining == 0) done_cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return remaining == 0; });
  return failed_index < n ? failure : Status::OK();
}

}  // namespace etlopt
