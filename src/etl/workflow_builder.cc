#include "etl/workflow_builder.h"

namespace etlopt {

WorkflowBuilder::WorkflowBuilder(std::string name) {
  wf_.name_ = std::move(name);
}

AttrId WorkflowBuilder::DeclareAttr(const std::string& name,
                                    int64_t domain_size) {
  return wf_.catalog_.Register(name, domain_size);
}

NodeId WorkflowBuilder::Add(WorkflowNode node) {
  node.id = static_cast<NodeId>(wf_.nodes_.size());
  wf_.nodes_.push_back(std::move(node));
  return wf_.nodes_.back().id;
}

std::string WorkflowBuilder::AutoName(const char* prefix) {
  return std::string(prefix) + "_" + std::to_string(name_counter_++);
}

NodeId WorkflowBuilder::Source(const std::string& table_name,
                               std::vector<AttrId> attrs) {
  WorkflowNode node;
  node.kind = OpKind::kSource;
  node.name = table_name;
  node.table_name = table_name;
  node.source_schema = Schema(std::move(attrs));
  return Add(std::move(node));
}

NodeId WorkflowBuilder::Filter(NodeId input, Predicate predicate,
                               std::string name) {
  WorkflowNode node;
  node.kind = OpKind::kFilter;
  node.name = name.empty() ? AutoName("filter") : std::move(name);
  node.inputs = {input};
  node.predicate = predicate;
  return Add(std::move(node));
}

NodeId WorkflowBuilder::Project(NodeId input, std::vector<AttrId> keep,
                                std::string name) {
  WorkflowNode node;
  node.kind = OpKind::kProject;
  node.name = name.empty() ? AutoName("project") : std::move(name);
  node.inputs = {input};
  node.keep = std::move(keep);
  return Add(std::move(node));
}

NodeId WorkflowBuilder::Transform(NodeId input, AttrId attr,
                                  std::function<Value(Value)> fn,
                                  std::string name) {
  WorkflowNode node;
  node.kind = OpKind::kTransform;
  node.name = name.empty() ? AutoName("transform") : std::move(name);
  node.inputs = {input};
  node.transform.input_attr = attr;
  node.transform.output_attr = attr;
  node.transform.fn = std::move(fn);
  return Add(std::move(node));
}

NodeId WorkflowBuilder::DeriveAttr(NodeId input, AttrId from, AttrId derived,
                                   std::function<Value(Value)> fn,
                                   std::string name) {
  WorkflowNode node;
  node.kind = OpKind::kTransform;
  node.name = name.empty() ? AutoName("derive") : std::move(name);
  node.inputs = {input};
  node.transform.input_attr = from;
  node.transform.output_attr = derived;
  node.transform.fn = std::move(fn);
  return Add(std::move(node));
}

NodeId WorkflowBuilder::AggregateUdf(NodeId input, AttrId attr,
                                     std::function<Value(Value)> fn,
                                     std::string name) {
  WorkflowNode node;
  node.kind = OpKind::kTransform;
  node.name = name.empty() ? AutoName("agg_udf") : std::move(name);
  node.inputs = {input};
  node.transform.input_attr = attr;
  node.transform.output_attr = attr;
  node.transform.fn = std::move(fn);
  node.transform.is_aggregate = true;
  return Add(std::move(node));
}

NodeId WorkflowBuilder::Aggregate(NodeId input, std::vector<AttrId> group_by,
                                  AttrId count_attr, std::string name) {
  WorkflowNode node;
  node.kind = OpKind::kAggregate;
  node.name = name.empty() ? AutoName("groupby") : std::move(name);
  node.inputs = {input};
  node.aggregate.group_by = std::move(group_by);
  node.aggregate.count_attr = count_attr;
  return Add(std::move(node));
}

NodeId WorkflowBuilder::Join(NodeId left, NodeId right, AttrId attr,
                             JoinOptions options, std::string name) {
  WorkflowNode node;
  node.kind = OpKind::kJoin;
  node.name = name.empty() ? AutoName("join") : std::move(name);
  node.inputs = {left, right};
  node.join.attr = attr;
  node.join.left_reject_link = options.reject_link;
  node.join.fk_lookup = options.fk_lookup;
  return Add(std::move(node));
}

void WorkflowBuilder::SetJoinAlgorithm(NodeId join, JoinAlgorithm algorithm) {
  ETLOPT_CHECK(join >= 0 && join < static_cast<NodeId>(wf_.nodes_.size()));
  ETLOPT_CHECK(wf_.nodes_[static_cast<size_t>(join)].kind == OpKind::kJoin);
  wf_.nodes_[static_cast<size_t>(join)].join.algorithm = algorithm;
}

NodeId WorkflowBuilder::Materialize(NodeId input,
                                    const std::string& target_name) {
  WorkflowNode node;
  node.kind = OpKind::kMaterialize;
  node.name = "mat_" + target_name;
  node.inputs = {input};
  node.target_name = target_name;
  return Add(std::move(node));
}

NodeId WorkflowBuilder::Sink(NodeId input, const std::string& target_name) {
  WorkflowNode node;
  node.kind = OpKind::kSink;
  node.name = "sink_" + target_name;
  node.inputs = {input};
  node.target_name = target_name;
  return Add(std::move(node));
}

Result<Workflow> WorkflowBuilder::Build() && {
  ETLOPT_RETURN_IF_ERROR(wf_.Finalize());
  return std::move(wf_);
}

}  // namespace etlopt
