#include "planspace/block.h"

#include <algorithm>

namespace etlopt {
namespace {

bool IsUnary(OpKind kind) {
  return kind == OpKind::kFilter || kind == OpKind::kProject ||
         kind == OpKind::kTransform || kind == OpKind::kAggregate;
}

// Seal decisions (block boundary placed after the node). See PartitionBlocks
// docs in the header.
std::vector<bool> ComputeSeals(const Workflow& wf) {
  const int n = wf.num_nodes();
  std::vector<bool> sealed(static_cast<size_t>(n), false);
  for (const WorkflowNode& node : wf.nodes()) {
    bool seal = false;
    switch (node.kind) {
      case OpKind::kMaterialize:
        seal = true;  // explicitly materialized intermediate result
        break;
      case OpKind::kTransform:
        // Black-box aggregate UDFs are block boundaries (Section 3.2.1);
        // known-semantics group-bys (kAggregate) instead stay pinned in
        // input chains, where the G1/G2 rules apply.
        if (node.transform.is_aggregate) seal = true;
        break;
      case OpKind::kJoin:
        if (node.join.left_reject_link) seal = true;  // designed reject link
        break;
      default:
        break;
    }
    // Fan-out forces materialization of the intermediate result.
    if (wf.consumers(node.id).size() > 1) seal = true;
    // A join feeding a unary operator is pinned: the unary op becomes a
    // chain op of the next block over this join's output. This also covers
    // the Fig. 3 derived-join-attribute UDF boundary.
    if (node.kind == OpKind::kJoin) {
      for (NodeId c : wf.consumers(node.id)) {
        if (IsUnary(wf.node(c).kind)) seal = true;
      }
    }
    sealed[static_cast<size_t>(node.id)] = seal;
  }
  // A designed reject link materializes the non-matching rows of the join's
  // *designed* left input, so that input must be produced exactly as
  // designed: seal any join feeding a reject-link join. The reject join then
  // forms a single-join (unreorderable) block of its own.
  for (const WorkflowNode& node : wf.nodes()) {
    if (node.kind == OpKind::kJoin && node.join.left_reject_link) {
      for (NodeId in : node.inputs) {
        if (wf.node(in).kind == OpKind::kJoin) {
          sealed[static_cast<size_t>(in)] = true;
        }
      }
    }
  }
  return sealed;
}

// Walks down from `top` collecting the maximal run of unsealed unary ops;
// returns the base node and fills `chain` in application order.
NodeId ResolveChain(const Workflow& wf, const std::vector<bool>& sealed,
                    NodeId top, std::vector<NodeId>* chain) {
  std::vector<NodeId> rev;
  NodeId cur = top;
  while (IsUnary(wf.node(cur).kind) && !sealed[static_cast<size_t>(cur)]) {
    rev.push_back(cur);
    cur = wf.node(cur).inputs[0];
  }
  chain->assign(rev.rbegin(), rev.rend());
  return cur;
}

}  // namespace

std::vector<Block> PartitionBlocks(const Workflow& wf) {
  const std::vector<bool> sealed = ComputeSeals(wf);

  // Group joins into blocks: a join merges with an input join when that
  // input join is unsealed (no boundary between them).
  const int n = wf.num_nodes();
  std::vector<int> block_of(static_cast<size_t>(n), -1);
  std::vector<Block> blocks;

  // covered[node] = relation mask of a join output within its block.
  std::vector<RelMask> covered(static_cast<size_t>(n), 0);

  // Maps (block index, base node, chain signature) are handled by scanning
  // the block inputs directly — blocks are small.
  auto find_or_add_input = [&](Block& block, NodeId base,
                               const std::vector<NodeId>& chain) -> int {
    for (size_t i = 0; i < block.inputs.size(); ++i) {
      if (block.inputs[i].base == base && block.inputs[i].chain == chain) {
        return static_cast<int>(i);
      }
    }
    block.inputs.push_back(BlockInput{base, chain});
    return static_cast<int>(block.inputs.size()) - 1;
  };

  for (const WorkflowNode& node : wf.nodes()) {
    if (node.kind != OpKind::kJoin) continue;

    // Resolve each side: an unsealed join joins within the same block;
    // anything else resolves to a chain over a base.
    struct Side {
      bool is_join = false;
      NodeId join_node = kInvalidNode;
      NodeId base = kInvalidNode;
      std::vector<NodeId> chain;
    };
    Side sides[2];
    for (int s = 0; s < 2; ++s) {
      const NodeId in = node.inputs[static_cast<size_t>(s)];
      if (wf.node(in).kind == OpKind::kJoin &&
          !sealed[static_cast<size_t>(in)]) {
        sides[s].is_join = true;
        sides[s].join_node = in;
      } else {
        sides[s].base = ResolveChain(wf, sealed, in, &sides[s].chain);
      }
    }

    // Determine this join's block.
    int bid = -1;
    for (int s = 0; s < 2; ++s) {
      if (sides[s].is_join) {
        const int b = block_of[static_cast<size_t>(sides[s].join_node)];
        ETLOPT_CHECK(b >= 0);
        ETLOPT_CHECK_MSG(bid < 0 || bid == b,
                         "join inputs belong to different blocks");
        bid = b;
      }
    }
    if (bid < 0) {
      bid = static_cast<int>(blocks.size());
      blocks.push_back(Block{});
      blocks.back().id = bid;
    }
    Block& block = blocks[static_cast<size_t>(bid)];
    block_of[static_cast<size_t>(node.id)] = bid;

    RelMask masks[2];
    for (int s = 0; s < 2; ++s) {
      if (sides[s].is_join) {
        masks[s] = covered[static_cast<size_t>(sides[s].join_node)];
      } else {
        const int rel = find_or_add_input(block, sides[s].base,
                                          sides[s].chain);
        masks[s] = RelMask{1} << rel;
      }
    }
    covered[static_cast<size_t>(node.id)] = masks[0] | masks[1];

    BlockJoin bj;
    bj.node = node.id;
    bj.left = masks[0];
    bj.right = masks[1];
    bj.attr = node.join.attr;
    bj.fk_lookup = node.join.fk_lookup;
    bj.reject_link = node.join.left_reject_link;
    block.joins.push_back(bj);
    block.output = node.id;
  }

  // Joinless blocks: maximal chains whose top feeds no join (they feed
  // sink/materialize or a sealed boundary only). Identify tops: nodes that
  // are sources or unsealed unary ops whose consumers contain no join and no
  // unsealed unary continuation.
  for (const WorkflowNode& node : wf.nodes()) {
    const bool chain_member =
        node.kind == OpKind::kSource ||
        (IsUnary(node.kind) && !sealed[static_cast<size_t>(node.id)]);
    if (!chain_member) continue;
    bool is_top = true;
    for (NodeId c : wf.consumers(node.id)) {
      const OpKind ck = wf.node(c).kind;
      if (ck == OpKind::kJoin) {
        is_top = false;  // belongs to a join block's input chain
        break;
      }
      if (IsUnary(ck) && !sealed[static_cast<size_t>(c)] &&
          wf.consumers(node.id).size() == 1) {
        is_top = false;  // chain continues upward
        break;
      }
    }
    if (!is_top) continue;
    Block block;
    block.id = static_cast<int>(blocks.size());
    BlockInput input;
    input.base = ResolveChain(wf, sealed, node.id, &input.chain);
    block.inputs.push_back(std::move(input));
    block.output = node.id;
    blocks.push_back(std::move(block));
  }

  std::sort(blocks.begin(), blocks.end(),
            [](const Block& a, const Block& b) { return a.id < b.id; });
  return blocks;
}

Result<BlockContext> BlockContext::Build(const Workflow* workflow,
                                         Block block) {
  ETLOPT_CHECK(workflow != nullptr);
  BlockContext ctx;
  ctx.wf_ = workflow;
  const int n = block.num_rels();
  if (n < 1) return Status::InvalidArgument("block has no inputs");
  if (n > 16) return Status::InvalidArgument("block exceeds 16 inputs");
  ctx.graph_ = JoinGraph(n);

  // Singletons are always on-path.
  for (int r = 0; r < n; ++r) {
    ctx.on_path_[RelMask{1} << r] =
        block.inputs[static_cast<size_t>(r)].top();
  }

  for (const BlockJoin& j : block.joins) {
    ctx.on_path_[j.left | j.right] = j.node;
    if (IsSingleton(j.right)) ctx.next_partner_[j.left] = {j.right, j.attr};
    if (IsSingleton(j.left)) ctx.next_partner_[j.right] = {j.left, j.attr};

    // Join-graph edge endpoints: the lowest relation on each side whose top
    // schema carries the join attribute.
    auto endpoint = [&](RelMask side) -> int {
      for (int rel : MaskToIndices(side)) {
        const NodeId top = block.inputs[static_cast<size_t>(rel)].top();
        if (workflow->output_schema(top).Contains(j.attr)) return rel;
      }
      return -1;
    };
    const int ea = endpoint(j.left);
    const int eb = endpoint(j.right);
    if (ea < 0 || eb < 0) {
      return Status::Internal("join attribute not found on either side");
    }
    JoinEdge edge;
    edge.a = ea;
    edge.b = eb;
    edge.attr = j.attr;
    edge.join_node = j.node;
    // The designed right side of an fk-lookup join is the dimension side
    // only when it is a single relation.
    if (j.fk_lookup && IsSingleton(j.right)) edge.fk_dim = eb;
    ctx.graph_.AddEdge(edge);
  }
  if (!ctx.graph_.IsForest()) {
    return Status::Unimplemented(
        "cyclic join graphs are not supported (block join graph must be a "
        "tree/forest)");
  }
  ctx.block_ = std::move(block);
  return ctx;
}

AttrMask BlockContext::SchemaMask(RelMask rels) const {
  AttrMask mask = 0;
  for (int rel : MaskToIndices(rels)) {
    mask |= wf_->output_schema(TopNode(rel)).mask();
  }
  return mask;
}

AttrMask BlockContext::StageSchemaMask(int rel, int stage) const {
  return wf_->output_schema(StageNode(rel, stage)).mask();
}

NodeId BlockContext::StageNode(int rel, int stage) const {
  const BlockInput& input = block_.inputs[static_cast<size_t>(rel)];
  ETLOPT_CHECK(stage >= 0 && stage <= input.num_inner_stages());
  if (stage == 0) return input.base;
  return input.chain[static_cast<size_t>(stage - 1)];
}

NodeId BlockContext::TopNode(int rel) const {
  return block_.inputs[static_cast<size_t>(rel)].top();
}

NodeId BlockContext::TopOpNode(int rel) const {
  const BlockInput& input = block_.inputs[static_cast<size_t>(rel)];
  return input.chain.empty() ? kInvalidNode : input.chain.back();
}

RelMask BlockContext::InitialNextPartner(RelMask rels, AttrId* attr) const {
  auto it = next_partner_.find(rels);
  if (it == next_partner_.end()) return 0;
  if (attr != nullptr) *attr = it->second.attr;
  return it->second.rel;
}

std::string BlockContext::RelLabel(int rel) const {
  return wf_->node(block_.inputs[static_cast<size_t>(rel)].base).name;
}

}  // namespace etlopt
