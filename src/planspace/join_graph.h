#ifndef ETLOPT_PLANSPACE_JOIN_GRAPH_H_
#define ETLOPT_PLANSPACE_JOIN_GRAPH_H_

#include <cstddef>
#include <vector>

#include "etl/types.h"
#include "util/bitmask.h"

namespace etlopt {

// An undirected join edge between two block inputs. `fk_dim` is the relation
// index of the dimension (lookup) side when the designed join was declared a
// foreign-key lookup, else -1.
struct JoinEdge {
  int a = 0;
  int b = 0;
  AttrId attr = kInvalidAttr;
  int fk_dim = -1;
  NodeId join_node = kInvalidNode;  // the designed join using this edge
};

// The join graph of one optimizable block. The library requires it to be a
// forest (stars, chains, snowflakes — the usual ETL shapes): then every
// connected SE is a subtree and every split of an SE corresponds to exactly
// one crossing edge, which keeps plan enumeration and the union-division
// rules well-defined.
class JoinGraph {
 public:
  explicit JoinGraph(int num_rels);

  void AddEdge(JoinEdge edge);

  int num_rels() const { return num_rels_; }
  const std::vector<JoinEdge>& edges() const { return edges_; }
  // Indices into edges() incident to `rel`.
  const std::vector<int>& edges_of(int rel) const {
    return incident_[static_cast<size_t>(rel)];
  }

  bool IsForest() const;
  bool IsConnected(RelMask subset) const;

  // The unique edge with one endpoint in `a` and the other in `b`; -1 when
  // there is not exactly one such edge.
  int CrossingEdge(RelMask a, RelMask b) const;

  // Neighbours of `rel` restricted to `subset` (as a mask).
  RelMask Neighbors(int rel, RelMask subset) const;

  // All connected subsets of the graph (singletons included), sorted by
  // population count then value.
  std::vector<RelMask> ConnectedSubsets() const;

 private:
  int num_rels_;
  std::vector<JoinEdge> edges_;
  std::vector<std::vector<int>> incident_;
};

}  // namespace etlopt

#endif  // ETLOPT_PLANSPACE_JOIN_GRAPH_H_
