#include "obs/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/metrics.h"
#include "stats/stat_io.h"
#include "util/json.h"

namespace etlopt {
namespace obs {

std::string TapCheckpoint::ToJson() const {
  Json j = Json::Object();
  j.Set("run_id", Json::Str(run_id));
  j.Set("fingerprint", Json::Str(fingerprint));
  j.Set("workflow", Json::Str(workflow));
  j.Set("partial", Json::Bool(partial));
  j.Set("rows_tapped", Json::Int(rows_tapped));
  Json watermarks = Json::Object();
  for (const auto& [source, rows] : source_rows_read) {
    watermarks.Set(source, Json::Int(rows));
  }
  j.Set("watermarks", std::move(watermarks));
  if (!partition_rows.empty()) {
    Json parts = Json::Array();
    for (int64_t rows : partition_rows) parts.push_back(Json::Int(rows));
    j.Set("partition_rows", std::move(parts));
  }
  // Same stat_io text codec the ledger embeds, one string per block.
  Json stats = Json::Array();
  for (const StatStore& store : block_stats) {
    stats.push_back(Json::Str(WriteStatStoreText(store)));
  }
  j.Set("stats", std::move(stats));
  return j.Dump();
}

Result<TapCheckpoint> TapCheckpoint::FromJson(const std::string& text) {
  ETLOPT_ASSIGN_OR_RETURN(const Json j, Json::Parse(text));
  if (!j.is_object()) {
    return Status::InvalidArgument("tap checkpoint is not a JSON object");
  }
  TapCheckpoint checkpoint;
  checkpoint.run_id = j.GetString("run_id");
  checkpoint.fingerprint = j.GetString("fingerprint");
  checkpoint.workflow = j.GetString("workflow");
  if (const Json* partial = j.Find("partial");
      partial != nullptr && partial->is_bool()) {
    checkpoint.partial = partial->bool_value();
  }
  checkpoint.rows_tapped = j.GetInt("rows_tapped");
  if (const Json* watermarks = j.Find("watermarks");
      watermarks != nullptr && watermarks->is_object()) {
    for (const auto& [source, rows] : watermarks->members()) {
      if (rows.is_number()) {
        checkpoint.source_rows_read.emplace_back(source, rows.int_value());
      }
    }
  }
  if (const Json* parts = j.Find("partition_rows");
      parts != nullptr && parts->is_array()) {
    for (const Json& rows : parts->array()) {
      if (rows.is_number()) checkpoint.partition_rows.push_back(rows.int_value());
    }
  }
  if (const Json* stats = j.Find("stats");
      stats != nullptr && stats->is_array()) {
    for (const Json& js : stats->array()) {
      if (!js.is_string()) continue;
      ETLOPT_ASSIGN_OR_RETURN(StatStore store,
                              ParseStatStoreText(js.string_value()));
      checkpoint.block_stats.push_back(std::move(store));
    }
  }
  return checkpoint;
}

Status CheckpointWriter::Flush(const TapCheckpoint& checkpoint) {
  // Atomic replace: write beside the target, fsync, rename. A crash at any
  // instant leaves either the previous snapshot or this one, never a torn
  // file.
  const std::string tmp_path = path_ + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    if (!out) {
      return Status::InvalidArgument("cannot open '" + tmp_path +
                                     "' for writing");
    }
    out << checkpoint.ToJson() << "\n";
    out.flush();
    if (!out.good()) {
      return Status::Internal("write to '" + tmp_path + "' failed");
    }
  }
  const int fd = ::open(tmp_path.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
  if (std::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    return Status::Internal("rename '" + tmp_path + "' -> '" + path_ +
                            "' failed");
  }
  ++flushes_;
  ETLOPT_COUNTER_ADD("etlopt.obs.checkpoint.flushes", 1);
  return Status::OK();
}

Status CheckpointWriter::Discard() {
  std::remove(path_.c_str());
  return Status::OK();
}

Result<TapCheckpoint> LoadTapCheckpoint(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("no tap checkpoint at '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return TapCheckpoint::FromJson(buf.str());
}

}  // namespace obs
}  // namespace etlopt
