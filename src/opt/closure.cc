#include "opt/closure.h"

#include <algorithm>
#include <deque>

#include "util/common.h"

namespace etlopt {

std::vector<char> ComputeClosure(const CssCatalog& catalog,
                                 const std::vector<char>& observed,
                                 std::vector<int>* derivation) {
  const int n = catalog.num_stats();
  ETLOPT_CHECK(static_cast<int>(observed.size()) == n);
  std::vector<char> computable = observed;
  if (derivation != nullptr) derivation->assign(static_cast<size_t>(n), -1);

  // Counting-based fixpoint: each CSS fires once all its inputs are
  // computable; firing makes its target computable.
  const int m = catalog.num_css();
  std::vector<int> missing(static_cast<size_t>(m), 0);
  std::vector<std::vector<int>> css_waiting_on(static_cast<size_t>(n));
  std::deque<int> ready;  // newly computable stats

  for (int s = 0; s < n; ++s) {
    if (computable[static_cast<size_t>(s)]) ready.push_back(s);
  }
  for (int c = 0; c < m; ++c) {
    int need = 0;
    std::vector<int> inputs = catalog.css_inputs(c);
    std::sort(inputs.begin(), inputs.end());
    inputs.erase(std::unique(inputs.begin(), inputs.end()), inputs.end());
    for (int input : inputs) {
      if (!computable[static_cast<size_t>(input)]) {
        ++need;
        css_waiting_on[static_cast<size_t>(input)].push_back(c);
      }
    }
    missing[static_cast<size_t>(c)] = need;
    if (need == 0) {
      const int target = catalog.css_target(c);
      if (!computable[static_cast<size_t>(target)]) {
        computable[static_cast<size_t>(target)] = 1;
        if (derivation != nullptr) (*derivation)[static_cast<size_t>(target)] = c;
        ready.push_back(target);
      }
    }
  }

  while (!ready.empty()) {
    const int s = ready.front();
    ready.pop_front();
    for (int c : css_waiting_on[static_cast<size_t>(s)]) {
      if (--missing[static_cast<size_t>(c)] == 0) {
        const int target = catalog.css_target(c);
        if (!computable[static_cast<size_t>(target)]) {
          computable[static_cast<size_t>(target)] = 1;
          if (derivation != nullptr) {
            (*derivation)[static_cast<size_t>(target)] = c;
          }
          ready.push_back(target);
        }
      }
    }
  }
  return computable;
}

}  // namespace etlopt
