#include "estimator/estimator.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "obs/metrics.h"
#include "opt/closure.h"
#include "util/logging.h"

namespace etlopt {

Estimator::Estimator(const BlockContext* ctx, const CssCatalog* catalog)
    : ctx_(ctx), catalog_(catalog) {
  ETLOPT_CHECK(ctx_ != nullptr && catalog_ != nullptr);
}

Status Estimator::DeriveAll(const StatStore& observed) {
  derived_ = observed;
  provenance_.clear();
  clamped_ = 0;
  for (const auto& [key, value] : observed.values()) {
    (void)value;
    provenance_[key] = StatProvenance{};
  }

  // Sanitize the observed inputs before deriving anything from them: a
  // corrupted ledger or a salvaged partial run can hand us negative counts
  // or non-finite error bounds, and every rule below would propagate the
  // poison. Repairs count as distrust evidence via clamped_values().
  for (const auto& [key, value] : observed.values()) {
    StatValue repaired = value;
    bool repair = false;
    if (repaired.is_count() && repaired.count() < 0) {
      ETLOPT_LOG(Warning) << "observed statistic " << key.ToString()
                          << " is negative (" << repaired.count()
                          << "); clamping to 0";
      const bool approx = repaired.is_approx();
      const double err = repaired.rel_error();
      repaired = StatValue::Count(0);
      if (approx && std::isfinite(err) && err >= 0.0) repaired.SetApprox(err);
      repair = true;
    }
    if (repaired.is_approx() && (!std::isfinite(repaired.rel_error()) ||
                                 repaired.rel_error() < 0.0)) {
      repaired.SetApprox(1.0);  // unknown precision: worst finite bound
      repair = true;
    }
    if (repair) {
      derived_.Set(key, std::move(repaired));
      ++clamped_;
    }
  }

  // Closure with derivation choices gives an acyclic evaluation order:
  // each stat's chosen CSS only references stats that became computable
  // earlier.
  const int n = catalog_->num_stats();
  std::vector<char> obs_flags(static_cast<size_t>(n), 0);
  for (int s = 0; s < n; ++s) {
    if (observed.Contains(catalog_->stat(s))) {
      obs_flags[static_cast<size_t>(s)] = 1;
    }
  }
  std::vector<int> derivation;
  const std::vector<char> computable =
      ComputeClosure(*catalog_, obs_flags, &derivation);

  // Evaluate in dependency order via a worklist: a stat is ready when all
  // inputs of its chosen CSS have values.
  std::deque<int> pending;
  for (int s = 0; s < n; ++s) {
    if (computable[static_cast<size_t>(s)] &&
        !obs_flags[static_cast<size_t>(s)]) {
      pending.push_back(s);
    }
  }
  size_t stall = 0;
  while (!pending.empty()) {
    if (stall > pending.size()) {
      return Status::Internal("cyclic derivation during estimation");
    }
    const int s = pending.front();
    pending.pop_front();
    const int css = derivation[static_cast<size_t>(s)];
    ETLOPT_CHECK(css >= 0);
    const CssEntry& entry = catalog_->entry(css);
    bool ready = true;
    for (const StatKey& in : entry.inputs) {
      if (!derived_.Contains(in)) {
        ready = false;
        break;
      }
    }
    if (!ready) {
      pending.push_back(s);
      ++stall;
      continue;
    }
    stall = 0;
    ETLOPT_ASSIGN_OR_RETURN(StatValue value, Evaluate(entry));
    // Sanitize: with corrupted or salvaged inputs a derivation can produce
    // a negative count (e.g. J4 with a negative reject cardinality). Clamp
    // rather than poison every downstream estimate — the guard layer reads
    // clamped_values() as distrust evidence.
    if (value.is_count() && value.count() < 0) {
      ETLOPT_LOG(Warning) << "derived statistic " << entry.target.ToString()
                          << " came out negative (" << value.count()
                          << "); clamping to 0";
      const bool approx = value.is_approx();
      const double err = value.rel_error();
      value = StatValue::Count(0);
      if (approx) value.SetApprox(err);
      ++clamped_;
    }
    // Uncertainty propagation: a derivation is at best as precise as its
    // inputs. Summing input relative errors is the first-order bound for
    // the products/ratios the CSS rules compose (conservative for sums).
    double rel_error = 0.0;
    for (const StatKey& in : entry.inputs) {
      const StatValue* iv = derived_.Find(in);
      if (iv != nullptr && iv->is_approx()) rel_error += iv->rel_error();
    }
    if (!std::isfinite(rel_error) || rel_error < 0.0) {
      rel_error = 1.0;  // unknown precision: worst finite bound
      ++clamped_;
    }
    if (rel_error > 0.0) value.SetApprox(rel_error);
    derived_.Set(entry.target, std::move(value));
    StatProvenance prov;
    prov.observed = false;
    prov.rule = entry.rule;
    prov.inputs = entry.inputs;
    provenance_[entry.target] = std::move(prov);
  }
  if (clamped_ > 0) {
    ETLOPT_COUNTER_ADD("etlopt.estimator.clamped", clamped_);
  }
  return Status::OK();
}

std::vector<StatKey> Estimator::ObservedLeaves(const StatKey& key) const {
  std::vector<StatKey> leaves;
  std::unordered_map<StatKey, char, StatKeyHash> visited;
  std::vector<StatKey> stack{key};
  while (!stack.empty()) {
    const StatKey k = stack.back();
    stack.pop_back();
    if (visited[k]++) continue;
    const auto it = provenance_.find(k);
    if (it == provenance_.end()) continue;  // value never materialized
    if (it->second.observed) {
      leaves.push_back(k);
      continue;
    }
    // Push in reverse so inputs are visited in CSS order.
    for (auto in = it->second.inputs.rbegin(); in != it->second.inputs.rend();
         ++in) {
      stack.push_back(*in);
    }
  }
  return leaves;
}

Result<StatValue> Estimator::Evaluate(const CssEntry& entry) {
  auto count_in = [&](int i) -> Result<int64_t> {
    return derived_.GetCount(entry.inputs[static_cast<size_t>(i)]);
  };
  auto hist_in = [&](int i) -> Result<Histogram> {
    return derived_.GetHist(entry.inputs[static_cast<size_t>(i)]);
  };

  switch (entry.rule) {
    case RuleId::kS1: {
      const WorkflowNode& op = ctx_->workflow().node(entry.op_node);
      ETLOPT_ASSIGN_OR_RETURN(Histogram h, hist_in(0));
      return StatValue::Count(h.CountMatching(op.predicate));
    }
    case RuleId::kS2: {
      const WorkflowNode& op = ctx_->workflow().node(entry.op_node);
      ETLOPT_ASSIGN_OR_RETURN(Histogram h, hist_in(0));
      return StatValue::Hist(
          h.FilterThenMarginalize(op.predicate, entry.target.attrs));
    }
    case RuleId::kCopyCard:
    case RuleId::kG1:
    case RuleId::kFk: {
      ETLOPT_ASSIGN_OR_RETURN(int64_t c, count_in(0));
      return StatValue::Count(c);
    }
    case RuleId::kCopyHist: {
      ETLOPT_ASSIGN_OR_RETURN(Histogram h, hist_in(0));
      return StatValue::Hist(std::move(h));
    }
    case RuleId::kG2: {
      ETLOPT_ASSIGN_OR_RETURN(Histogram h, hist_in(0));
      return StatValue::Hist(
          h.CollapseToDistinct().Marginalize(entry.target.attrs));
    }
    case RuleId::kJ1: {
      ETLOPT_ASSIGN_OR_RETURN(Histogram a, hist_in(0));
      ETLOPT_ASSIGN_OR_RETURN(Histogram b, hist_in(1));
      return StatValue::Count(Histogram::DotProduct(a, b));
    }
    case RuleId::kJ2: {
      ETLOPT_ASSIGN_OR_RETURN(Histogram x, hist_in(0));
      ETLOPT_ASSIGN_OR_RETURN(Histogram y, hist_in(1));
      Histogram combined = Histogram::MultiplyBy(x, y);
      if (entry.marginalize) {
        combined = combined.Marginalize(entry.target.attrs);
      }
      return StatValue::Hist(std::move(combined));
    }
    case RuleId::kJ4: {
      // |e| = |H_{e∪k}^J / H_k^J| + |reject(L wrt k) ⋈ R|   (Eq. 1-3)
      ETLOPT_ASSIGN_OR_RETURN(Histogram hek, hist_in(0));
      ETLOPT_ASSIGN_OR_RETURN(Histogram hk, hist_in(1));
      ETLOPT_ASSIGN_OR_RETURN(int64_t reject_card, count_in(2));
      const Histogram matched =
          Histogram::DivideByClamped(hek, hk, &clamped_);
      return StatValue::Count(matched.TotalCount() + reject_card);
    }
    case RuleId::kJ5: {
      ETLOPT_ASSIGN_OR_RETURN(Histogram hek, hist_in(0));
      ETLOPT_ASSIGN_OR_RETURN(Histogram hk, hist_in(1));
      ETLOPT_ASSIGN_OR_RETURN(Histogram hreject, hist_in(2));
      Histogram matched = Histogram::DivideByClamped(hek, hk, &clamped_)
                              .Marginalize(entry.target.attrs);
      matched.AddAll(hreject);
      return StatValue::Hist(std::move(matched));
    }
    case RuleId::kI1: {
      ETLOPT_ASSIGN_OR_RETURN(Histogram h, hist_in(0));
      return StatValue::Count(h.TotalCount());
    }
    case RuleId::kI2: {
      ETLOPT_ASSIGN_OR_RETURN(Histogram h, hist_in(0));
      return StatValue::Hist(h.Marginalize(entry.target.attrs));
    }
    case RuleId::kD1: {
      ETLOPT_ASSIGN_OR_RETURN(Histogram h, hist_in(0));
      return StatValue::Count(h.NumBuckets());
    }
  }
  return Status::Internal("unhandled rule");
}

Result<int64_t> Estimator::Cardinality(RelMask se) const {
  return derived_.GetCount(StatKey::Card(se));
}

double Estimator::CardinalityConfidence(
    RelMask se, const std::vector<StatKey>& distrusted,
    double distrust_penalty) const {
  const StatKey key = StatKey::Card(se);
  const StatValue* value = derived_.Find(key);
  // Never materialized: the cardinality, if the caller has one, came from a
  // direct counter observation — exact by construction.
  if (value == nullptr) return 1.0;
  double confidence = 1.0;
  if (value->is_approx()) {
    confidence /= 1.0 + std::max(0.0, value->rel_error());
  }
  if (!distrusted.empty()) {
    for (const StatKey& leaf : ObservedLeaves(key)) {
      if (std::find(distrusted.begin(), distrusted.end(), leaf) !=
          distrusted.end()) {
        confidence *= distrust_penalty;
      }
    }
  }
  return std::clamp(confidence, 0.0, 1.0);
}

Result<int64_t> Estimator::Count(const StatKey& key) const {
  return derived_.GetCount(key);
}

Result<Histogram> Estimator::Hist(const StatKey& key) const {
  return derived_.GetHist(key);
}

Result<std::unordered_map<RelMask, int64_t>> Estimator::AllCardinalities(
    const std::vector<RelMask>& subexpressions) const {
  std::unordered_map<RelMask, int64_t> cards;
  for (RelMask se : subexpressions) {
    ETLOPT_ASSIGN_OR_RETURN(int64_t card, Cardinality(se));
    cards[se] = card;
  }
  return cards;
}

}  // namespace etlopt
