#include "stats/cost_model.h"

#include <algorithm>

#include "util/common.h"

namespace etlopt {

CostModel::CostModel(const AttrCatalog* catalog, CostModelOptions options)
    : catalog_(catalog), options_(options) {
  ETLOPT_CHECK(catalog_ != nullptr);
}

void CostModel::SetSeSize(RelMask rels, int64_t rows) {
  sizes_[SizeKey{rels, kTopStage}] = rows;
}

void CostModel::SetChainSize(int rel, int16_t stage, int64_t rows) {
  sizes_[SizeKey{RelMask{1} << rel, stage}] = rows;
}

int64_t CostModel::SeSize(RelMask rels, int16_t stage) const {
  auto it = sizes_.find(SizeKey{rels, stage});
  if (it != sizes_.end()) return it->second;
  return options_.default_se_size;
}

double CostModel::MemoryCost(const StatKey& key) const {
  switch (key.kind) {
    case StatKind::kCard:
    case StatKind::kRejectJoinCard:
      return 1.0;  // one counter
    case StatKind::kDistinct:
    case StatKind::kHist:
    case StatKind::kRejectJoinHist: {
      const double exact = static_cast<double>(catalog_->DomainProduct(key.attrs));
      if (options_.sketch_memory_cap > 0) {
        return std::min(exact,
                        static_cast<double>(options_.sketch_memory_cap));
      }
      return exact;
    }
  }
  return 0.0;
}

double CostModel::CpuCost(const StatKey& key) const {
  const double per_row =
      options_.cpu_ns_per_row > 0.0 ? options_.cpu_ns_per_row : 1.0;
  if (key.is_reject()) {
    // The side-join scans the rejected rows (bounded by |L|) and probes R.
    const int64_t left = SeSize(key.reject_left, kTopStage);
    const int64_t right = SeSize(key.rels, kTopStage);
    return per_row * static_cast<double>(left + right);
  }
  return per_row * static_cast<double>(SeSize(key.rels, key.stage));
}

double CostModel::Cost(const StatKey& key) const {
  switch (options_.metric) {
    case CostMetric::kMemory:
      return MemoryCost(key);
    case CostMetric::kCpu:
      return CpuCost(key);
    case CostMetric::kCombined:
      return options_.memory_weight * MemoryCost(key) +
             options_.cpu_weight * CpuCost(key);
  }
  return 0.0;
}

}  // namespace etlopt
