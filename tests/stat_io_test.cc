#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "estimator/estimator.h"
#include "stats/stat_io.h"
#include "test_util.h"

namespace etlopt {
namespace {

StatStore SampleStore() {
  StatStore store;
  store.Set(StatKey::Card(0b101), StatValue::Count(19739));
  store.Set(StatKey::CardStage(0, 1), StatValue::Count(321));
  store.Set(StatKey::Distinct(0b001, 0b11), StatValue::Count(42));
  Histogram h(0b101);  // attrs {0, 2}
  h.Add({1, 7}, 13);
  h.Add({2, 9}, 5);
  store.Set(StatKey::Hist(0b011, 0b101), StatValue::Hist(std::move(h)));
  store.Set(StatKey::RejectJoinCard(0b001, 1, 0b100), StatValue::Count(17));
  Histogram rh(0b10);
  rh.Add({4}, 3);
  store.Set(StatKey::RejectJoinHist(0b001, 1, 0b100, 0b10),
            StatValue::Hist(std::move(rh)));
  return store;
}

bool StoresEqual(const StatStore& a, const StatStore& b) {
  if (a.size() != b.size()) return false;
  for (const auto& [key, value] : a.values()) {
    const StatValue* other = b.Find(key);
    if (other == nullptr) return false;
    if (value.is_count() != other->is_count()) return false;
    if (value.is_count()) {
      if (value.count() != other->count()) return false;
    } else {
      if (!(value.hist() == other->hist())) return false;
    }
  }
  return true;
}

TEST(StatIoTest, RoundTripAllKinds) {
  const StatStore store = SampleStore();
  const std::string text = WriteStatStoreText(store);
  const Result<StatStore> parsed = ParseStatStoreText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << text;
  EXPECT_TRUE(StoresEqual(store, *parsed));
  // Fixed point: re-serializing is byte-identical (stable ordering).
  EXPECT_EQ(WriteStatStoreText(*parsed), text);
}

TEST(StatIoTest, EmptyStoreRoundTrips) {
  const StatStore store;
  const Result<StatStore> parsed =
      ParseStatStoreText(WriteStatStoreText(store));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 0u);
}

TEST(StatIoTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseStatStoreText("nonsense\n").ok());
  EXPECT_FALSE(ParseStatStoreText("stat card rels=x stage=-1 value=3\n").ok());
  EXPECT_FALSE(ParseStatStoreText("stat wat rels=1 stage=-1 value=3\n").ok());
  // Truncated histogram.
  EXPECT_FALSE(
      ParseStatStoreText("stat hist rels=1 stage=-1 attrs=1 buckets=2\n"
                         "bucket 1 = 5\n")
          .ok());
  // Bucket without a histogram.
  EXPECT_FALSE(ParseStatStoreText("bucket 1 = 5\n").ok());
}

TEST(StatIoTest, FileRoundTrip) {
  const StatStore store = SampleStore();
  const std::string path = ::testing::TempDir() + "/stats_roundtrip.txt";
  ASSERT_TRUE(SaveStatStore(store, path).ok());
  const Result<StatStore> loaded = LoadStatStore(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(StoresEqual(store, *loaded));
  EXPECT_FALSE(LoadStatStore("/nonexistent/stats.txt").ok());
}

TEST(StatIoTest, PersistedStatisticsDriveALaterOptimization) {
  // Run 1 observes and persists; a "later process" loads the file and
  // re-optimizes without touching the data — the deployment pattern the
  // design-once-run-repeatedly cycle implies.
  auto ex = testing_util::MakePaperExample();
  Pipeline pipeline;
  const auto analysis = pipeline.Analyze(ex.workflow).value();
  const RunOutcome run = pipeline.RunAndObserve(*analysis, ex.sources).value();

  const std::string path = ::testing::TempDir() + "/learned_stats.txt";
  ASSERT_TRUE(SaveStatStore(run.block_stats[0], path).ok());

  // "Later": load and estimate from the persisted statistics alone.
  const StatStore loaded = LoadStatStore(path).value();
  const BlockAnalysis& ba = *analysis->blocks[0];
  Estimator estimator(&ba.ctx, &ba.catalog);
  ASSERT_TRUE(estimator.DeriveAll(loaded).ok());
  const auto truth = ComputeGroundTruthCards(
                         ba.ctx, ba.plan_space.subexpressions(), run.exec)
                         .value();
  for (RelMask se : ba.plan_space.subexpressions()) {
    EXPECT_EQ(*estimator.Cardinality(se), truth.at(se)) << "SE " << se;
  }
}

}  // namespace
}  // namespace etlopt
