#ifndef ETLOPT_LP_SIMPLEX_H_
#define ETLOPT_LP_SIMPLEX_H_

#include <limits>
#include <utility>
#include <vector>

#include "util/status.h"

namespace etlopt {

// Relation of a linear constraint to its right-hand side.
enum class ConstraintSense { kLessEqual, kGreaterEqual, kEqual };

// One linear constraint: sum(coeff * var) sense rhs.
struct LpConstraint {
  std::vector<std::pair<int, double>> terms;  // (variable index, coefficient)
  ConstraintSense sense = ConstraintSense::kLessEqual;
  double rhs = 0.0;
};

// A linear program: minimize cost·x subject to constraints and per-variable
// bounds [lower, upper] (upper may be +inf). Used by the statistics-selection
// ILP of Section 5.2 of the paper.
class LinearProgram {
 public:
  static constexpr double kInfinity = std::numeric_limits<double>::infinity();

  // Returns the new variable's index.
  int AddVariable(double cost, double lower = 0.0, double upper = kInfinity);

  void AddConstraint(LpConstraint constraint);

  int num_variables() const { return static_cast<int>(costs_.size()); }
  int num_constraints() const { return static_cast<int>(constraints_.size()); }

  const std::vector<double>& costs() const { return costs_; }
  const std::vector<double>& lower_bounds() const { return lower_; }
  const std::vector<double>& upper_bounds() const { return upper_; }
  const std::vector<LpConstraint>& constraints() const { return constraints_; }

  // Mutable bounds are used by the branch-and-bound driver.
  void SetBounds(int var, double lower, double upper);

 private:
  std::vector<double> costs_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<LpConstraint> constraints_;
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;
};

struct SimplexOptions {
  int max_iterations = 200000;
  double tolerance = 1e-9;
};

// Solves the LP with a dense two-phase primal simplex. Suitable for the
// small/medium instances produced by per-workflow statistics selection.
LpSolution SolveLp(const LinearProgram& lp, const SimplexOptions& options = {});

}  // namespace etlopt

#endif  // ETLOPT_LP_SIMPLEX_H_
