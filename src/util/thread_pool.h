#ifndef ETLOPT_UTIL_THREAD_POOL_H_
#define ETLOPT_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace etlopt {

// A fixed-size worker pool with a shared task queue — the execution substrate
// of the partitioned executor (engine/parallel/). Deliberately minimal: no
// futures, no work stealing, no dynamic sizing. Tasks are plain closures;
// structured fan-out goes through ParallelFor, which is the only shape the
// engine needs (run N partition chains, wait at the merge barrier, surface
// the first failure).
//
// Error contract: a task given to ParallelFor reports failure by returning a
// non-OK Status; a task that *throws* is caught at the worker boundary and
// converted to Status::Internal, so an exception in one partition can never
// tear down the process or deadlock the barrier. When several tasks fail,
// the failure of the lowest index wins — deterministic regardless of
// scheduling.
class ThreadPool {
 public:
  // Spawns `num_threads` workers (floored at 1). The pool is reusable: any
  // number of ParallelFor / Submit rounds may run over its lifetime.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Enqueues one fire-and-forget task. Exceptions are swallowed at the
  // worker boundary (use ParallelFor when failures must be observed).
  void Submit(std::function<void()> task);

  // Runs fn(0) .. fn(n-1) on the pool and blocks until all have finished.
  // Returns OK when every call returned OK; otherwise the non-OK Status of
  // the lowest failing index. Safe to call with n == 0 (returns OK without
  // touching the queue). Not re-entrant from inside a pool task.
  Status ParallelFor(int n, const std::function<Status(int)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace etlopt

#endif  // ETLOPT_UTIL_THREAD_POOL_H_
