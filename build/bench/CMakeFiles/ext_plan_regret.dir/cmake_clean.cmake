file(REMOVE_RECURSE
  "CMakeFiles/ext_plan_regret.dir/ext_plan_regret.cc.o"
  "CMakeFiles/ext_plan_regret.dir/ext_plan_regret.cc.o.d"
  "ext_plan_regret"
  "ext_plan_regret.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_plan_regret.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
