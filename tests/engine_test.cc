#include <gtest/gtest.h>

#include <algorithm>

#include "engine/executor.h"
#include "test_util.h"

namespace etlopt {
namespace {

TEST(TableTest, BuildHistogramAndDistinct) {
  Table t{Schema({0, 1})};
  t.AddRow({1, 10});
  t.AddRow({1, 11});
  t.AddRow({2, 10});
  t.AddRow({1, 10});
  const Histogram h0 = t.BuildHistogram(0b01);
  EXPECT_EQ(h0.Get1(1), 3);
  EXPECT_EQ(h0.Get1(2), 1);
  const Histogram h01 = t.BuildHistogram(0b11);
  EXPECT_EQ(h01.Get({1, 10}), 2);
  EXPECT_EQ(t.CountDistinct(0b01), 2);
  EXPECT_EQ(t.CountDistinct(0b11), 3);
}

TEST(HashJoinTest, InnerJoinWithRejects) {
  Table left{Schema({0, 1})};
  left.AddRow({1, 100});
  left.AddRow({2, 200});
  left.AddRow({3, 300});
  Table right{Schema({0, 2})};
  right.AddRow({1, 7});
  right.AddRow({1, 8});
  right.AddRow({2, 9});
  Table rejects{left.schema()};
  const Table out = HashJoin(left, right, 0, &rejects);
  EXPECT_EQ(out.num_rows(), 3);  // key 1 matches twice, key 2 once
  EXPECT_EQ(out.schema().size(), 3);
  EXPECT_EQ(rejects.num_rows(), 1);
  EXPECT_EQ(rejects.at(0, 0), 3);
}

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override { ex_ = testing_util::MakePaperExample(); }
  testing_util::PaperExample ex_;
};

TEST_F(ExecutorTest, RunsPaperExample) {
  Executor executor(&ex_.workflow);
  Result<ExecutionResult> result = executor.Execute(ex_.sources);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The sink output exists and matches the final join node output.
  const Table& sink_out = result->targets.at("warehouse.orders");
  EXPECT_GT(sink_out.num_rows(), 0);
  // Every node produced an output.
  EXPECT_EQ(static_cast<int>(result->node_outputs.size()),
            ex_.workflow.num_nodes());
  // Join rejects recorded for both joins (both sides).
  EXPECT_EQ(result->join_rejects.size(), 2u);
  EXPECT_EQ(result->join_rejects_right.size(), 2u);
}

TEST_F(ExecutorTest, JoinCardinalityMatchesBruteForce) {
  Executor executor(&ex_.workflow);
  const ExecutionResult result = executor.Execute(ex_.sources).value();
  const Table& orders = ex_.sources.at("Orders");
  const Table& product = ex_.sources.at("Product");
  const Table& customer = ex_.sources.at("Customer");
  int64_t brute = 0;
  for (int64_t o = 0; o < orders.num_rows(); ++o) {
    for (int64_t p = 0; p < product.num_rows(); ++p) {
      if (orders.at(o, 0) != product.at(p, 0)) continue;
      for (int64_t c = 0; c < customer.num_rows(); ++c) {
        if (orders.at(o, 1) == customer.at(c, 0)) ++brute;
      }
    }
  }
  EXPECT_EQ(result.targets.at("warehouse.orders").num_rows(), brute);
}

TEST(ExecutorOpsTest, FilterProjectTransformAggregate) {
  WorkflowBuilder b("ops");
  const AttrId a = b.DeclareAttr("a", 100);
  const AttrId c = b.DeclareAttr("c", 100);
  const AttrId d = b.DeclareAttr("d", 200);
  const NodeId src = b.Source("S", {a, c});
  const NodeId f = b.Filter(src, {a, CompareOp::kLe, 5});
  const NodeId t = b.DeriveAttr(f, a, d, [](Value v) { return v * 2; });
  const NodeId p = b.Project(t, {d, c});
  const NodeId g = b.Aggregate(p, {d});
  b.Sink(g, "out");
  Workflow wf = std::move(b).Build().value();

  Table s{Schema({a, c})};
  s.AddRow({1, 10});
  s.AddRow({5, 10});
  s.AddRow({6, 10});  // filtered out
  s.AddRow({1, 11});
  SourceMap sources{{"S", s}};
  const ExecutionResult result = Executor(&wf).Execute(sources).value();
  const Table& filtered = result.node_outputs.at(f);
  EXPECT_EQ(filtered.num_rows(), 3);
  const Table& derived = result.node_outputs.at(t);
  EXPECT_EQ(derived.schema().size(), 3);
  EXPECT_EQ(derived.at(0, 2), 2);  // 1*2
  const Table& grouped = result.node_outputs.at(g);
  EXPECT_EQ(grouped.num_rows(), 2);  // d in {2, 10}
}

TEST(ExecutorOpsTest, AggregateWithCountColumn) {
  WorkflowBuilder b("agg");
  const AttrId a = b.DeclareAttr("a", 10);
  const AttrId cnt = b.DeclareAttr("cnt", 1000000);
  const NodeId src = b.Source("S", {a});
  const NodeId g = b.Aggregate(src, {a}, cnt);
  b.Sink(g, "out");
  Workflow wf = std::move(b).Build().value();
  Table s{Schema({a})};
  s.AddRow({3});
  s.AddRow({3});
  s.AddRow({4});
  const ExecutionResult result =
      Executor(&wf).Execute({{"S", s}}).value();
  const Table& out = result.node_outputs.at(g);
  ASSERT_EQ(out.num_rows(), 2);
  // Find the group with key 3.
  for (int64_t r = 0; r < out.num_rows(); ++r) {
    if (out.at(r, 0) == 3) {
      EXPECT_EQ(out.at(r, 1), 2);
    }
    if (out.at(r, 0) == 4) {
      EXPECT_EQ(out.at(r, 1), 1);
    }
  }
}

TEST(ExecutorOpsTest, AggregateUdfDeduplicates) {
  WorkflowBuilder b("udf");
  const AttrId a = b.DeclareAttr("a", 100);
  const NodeId src = b.Source("S", {a});
  const NodeId u = b.AggregateUdf(src, a, [](Value v) { return v / 10; });
  b.Sink(u, "out");
  Workflow wf = std::move(b).Build().value();
  Table s{Schema({a})};
  s.AddRow({11});
  s.AddRow({12});  // same bucket as 11
  s.AddRow({25});
  const ExecutionResult result =
      Executor(&wf).Execute({{"S", s}}).value();
  EXPECT_EQ(result.node_outputs.at(u).num_rows(), 2);
}

TEST(ExecutorOpsTest, MaterializeCapturesTarget) {
  WorkflowBuilder b("mat");
  const AttrId a = b.DeclareAttr("a", 10);
  const NodeId src = b.Source("S", {a});
  const NodeId m = b.Materialize(src, "staging.s");
  b.Sink(m, "out");
  Workflow wf = std::move(b).Build().value();
  Table s{Schema({a})};
  s.AddRow({1});
  const ExecutionResult result =
      Executor(&wf).Execute({{"S", s}}).value();
  EXPECT_EQ(result.targets.at("staging.s").num_rows(), 1);
  EXPECT_EQ(result.targets.at("out").num_rows(), 1);
}

TEST(ExecutorOpsTest, MissingSourceFails) {
  auto ex = testing_util::MakePaperExample();
  SourceMap missing;
  Executor executor(&ex.workflow);
  EXPECT_FALSE(executor.Execute(missing).ok());
}

TEST(ExecutorOpsTest, SchemaMismatchFails) {
  auto ex = testing_util::MakePaperExample();
  SourceMap bad = ex.sources;
  bad["Orders"] = Table{Schema({ex.cust_id})};  // wrong schema
  Executor executor(&ex.workflow);
  EXPECT_FALSE(executor.Execute(bad).ok());
}

}  // namespace
}  // namespace etlopt
