// Golden equivalence suite for the columnar engine: the vectorized kernels
// must reproduce the legacy row-at-a-time engine bit for bit — target
// tables, every observed per-SE statistic (down to the text codec), and the
// ledger's per-SE cards — across the datagen workload suite, serial and
// partitioned (threads=4) execution, and a pinned fault-injection spec.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/pipeline.h"
#include "datagen/workload_suite.h"
#include "engine/column.h"
#include "stats/stat_io.h"
#include "test_util.h"
#include "util/fault.h"

namespace etlopt {
namespace {

class ScopedKernels {
 public:
  explicit ScopedKernels(bool on) : saved_(VectorizedKernels()) {
    SetVectorizedKernels(on);
  }
  ~ScopedKernels() { SetVectorizedKernels(saved_); }

 private:
  bool saved_;
};

std::vector<std::string> BlockStatsText(const RunOutcome& run) {
  std::vector<std::string> text;
  for (const StatStore& store : run.block_stats) {
    text.push_back(WriteStatStoreText(store));
  }
  return text;
}

void ExpectCyclesIdentical(const CycleOutcome& legacy,
                           const CycleOutcome& vec, const std::string& what) {
  // Observed statistics, down to the text codec.
  EXPECT_EQ(BlockStatsText(legacy.run), BlockStatsText(vec.run)) << what;
  // Target tables, row for row.
  ASSERT_EQ(legacy.run.exec.targets.size(), vec.run.exec.targets.size())
      << what;
  for (const auto& [name, table] : legacy.run.exec.targets) {
    EXPECT_EQ(table.MaterializeRows(),
              vec.run.exec.targets.at(name).MaterializeRows())
        << what << " target " << name;
  }
  // Downstream consequences: same estimates, same chosen plan.
  EXPECT_EQ(legacy.opt.optimized.ToString(), vec.opt.optimized.ToString())
      << what;
  ASSERT_EQ(legacy.opt.block_cards.size(), vec.opt.block_cards.size())
      << what;
  for (size_t i = 0; i < legacy.opt.block_cards.size(); ++i) {
    EXPECT_EQ(legacy.opt.block_cards[i], vec.opt.block_cards[i])
        << what << " block " << i;
  }
  // Ledger per-SE cards.
  const obs::RunRecord lrec = MakeRunRecord(legacy, "golden");
  const obs::RunRecord vrec = MakeRunRecord(vec, "golden");
  ASSERT_EQ(lrec.cards.size(), vrec.cards.size()) << what;
  for (size_t i = 0; i < lrec.cards.size(); ++i) {
    EXPECT_EQ(lrec.cards[i].block, vrec.cards[i].block) << what;
    EXPECT_EQ(lrec.cards[i].se, vrec.cards[i].se) << what;
    EXPECT_EQ(lrec.cards[i].estimated, vrec.cards[i].estimated) << what;
  }
}

CycleOutcome RunCycleWith(const WorkloadSpec& spec, const SourceMap& sources,
                          int threads, bool vectorized) {
  ScopedKernels scoped(vectorized);
  PipelineOptions opts;
  opts.num_threads = threads;
  Pipeline pipeline(opts);
  Result<CycleOutcome> cycle = pipeline.RunCycle(spec.workflow, sources);
  ETLOPT_CHECK_MSG(cycle.ok(), spec.name + ": " + cycle.status().ToString());
  return std::move(cycle).value();
}

TEST(VectorGoldenSuite, WorkloadSuiteBitIdenticalSerial) {
  for (int i = 1; i <= 30; ++i) {
    const WorkloadSpec spec = BuildWorkload(i);
    const SourceMap sources = GenerateSources(spec, 7, 0.01);
    const CycleOutcome legacy = RunCycleWith(spec, sources, 1, false);
    const CycleOutcome vec = RunCycleWith(spec, sources, 1, true);
    ExpectCyclesIdentical(legacy, vec, spec.name);
  }
}

TEST(VectorGoldenSuite, WorkloadSuiteBitIdenticalPartitioned) {
  // Partitioned execution exercises the slice kernels, the provenance
  // merge, and the per-partition tap feeds. The anchor workloads cover
  // star/snowflake/chain shapes, reject links, agg UDFs, materialized
  // intermediates, and the widest joins (wf21: 8-way, wf30: 6-way).
  for (int i : {3, 10, 11, 16, 17, 21, 23, 28, 30}) {
    const WorkloadSpec spec = BuildWorkload(i);
    const SourceMap sources = GenerateSources(spec, 7, 0.01);
    const CycleOutcome legacy = RunCycleWith(spec, sources, 4, false);
    const CycleOutcome vec = RunCycleWith(spec, sources, 4, true);
    ExpectCyclesIdentical(legacy, vec, spec.name + " threads=4");
    // And the partitioned vectorized run matches the serial vectorized run
    // (transitively: all four corners agree).
    const CycleOutcome serial_vec = RunCycleWith(spec, sources, 1, true);
    ExpectCyclesIdentical(serial_vec, vec, spec.name + " serial-vs-par");
  }
}

TEST(VectorGoldenSuite, DataGenerationIndependentOfKernelMode) {
  // Datagen draws rng values row-by-row regardless of the storage build
  // path; the generated tables must not depend on the kernel flag.
  for (int i : {1, 11, 21}) {
    const WorkloadSpec spec = BuildWorkload(i);
    SourceMap legacy_sources;
    SourceMap vec_sources;
    {
      ScopedKernels scoped(false);
      legacy_sources = GenerateSources(spec, 19, 0.01);
    }
    {
      ScopedKernels scoped(true);
      vec_sources = GenerateSources(spec, 19, 0.01);
    }
    ASSERT_EQ(legacy_sources.size(), vec_sources.size());
    for (const auto& [name, table] : legacy_sources) {
      EXPECT_TRUE(table == vec_sources.at(name))
          << spec.name << " table " << name;
    }
  }
}

class VectorGoldenFaultSuite : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(fault::FaultInjector::InstallGlobal("").ok());
  }
  void TearDown() override {
    ASSERT_TRUE(fault::FaultInjector::InstallGlobal("").ok());
  }
};

TEST_F(VectorGoldenFaultSuite, PinnedCrashSpecSalvagesIdentically) {
  // The pinned spec: deterministic seed, crash at the first join. The
  // salvaged prefix — completed node outputs, partial statistics, abort
  // bookkeeping — must agree between kernel generations, serial and
  // partitioned.
  const std::string spec_text = "seed=17;op:join:crash";
  auto ex = testing_util::MakePaperExample();
  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    auto run_once = [&](bool vectorized) {
      ScopedKernels scoped(vectorized);
      ETLOPT_CHECK(fault::FaultInjector::InstallGlobal(spec_text).ok());
      PipelineOptions opts;
      opts.num_threads = threads;
      Pipeline pipeline(opts);
      Result<CycleOutcome> cycle =
          pipeline.RunCycle(ex.workflow, ex.sources);
      ETLOPT_CHECK_MSG(cycle.ok(), cycle.status().ToString());
      ETLOPT_CHECK(fault::FaultInjector::InstallGlobal("").ok());
      return std::move(cycle).value();
    };
    const CycleOutcome legacy = run_once(false);
    const CycleOutcome vec = run_once(true);
    EXPECT_EQ(legacy.aborted(), vec.aborted());
    EXPECT_TRUE(legacy.aborted());  // the spec fires on this workflow
    EXPECT_EQ(legacy.run.exec.nodes_completed, vec.run.exec.nodes_completed);
    EXPECT_EQ(legacy.run.tap_report.salvage_skipped,
              vec.run.tap_report.salvage_skipped);
    // Salvaged statistics bit-identical.
    EXPECT_EQ(BlockStatsText(legacy.run), BlockStatsText(vec.run));
    // Salvaged node outputs row-identical.
    ASSERT_EQ(legacy.run.exec.node_outputs.size(),
              vec.run.exec.node_outputs.size());
    for (const auto& [id, table] : legacy.run.exec.node_outputs) {
      EXPECT_EQ(table.MaterializeRows(),
                vec.run.exec.node_outputs.at(id).MaterializeRows())
          << "node " << id;
    }
  }
}

}  // namespace
}  // namespace etlopt
