#ifndef ETLOPT_ETL_WORKFLOW_BUILDER_H_
#define ETLOPT_ETL_WORKFLOW_BUILDER_H_

#include <string>
#include <vector>

#include "etl/workflow.h"
#include "util/status.h"

namespace etlopt {

// Options for join construction.
struct JoinOptions {
  bool reject_link = false;  // materialize left non-matching rows
  bool fk_lookup = false;    // every left row matches exactly one right row
};

// Fluent construction of workflows. Node methods return the new node's id so
// flows compose naturally:
//
//   WorkflowBuilder b("orders_load");
//   AttrId cid = b.DeclareAttr("cust_id", 1000);
//   ...
//   NodeId orders = b.Source("Orders", {oid, cid, pid});
//   NodeId joined = b.Join(orders, customers, cid);
//   b.Sink(joined, "warehouse.orders");
//   Result<Workflow> wf = std::move(b).Build();
class WorkflowBuilder {
 public:
  explicit WorkflowBuilder(std::string name);

  // ---- attribute catalog ----
  AttrId DeclareAttr(const std::string& name, int64_t domain_size);

  // ---- operators ----
  NodeId Source(const std::string& table_name, std::vector<AttrId> attrs);
  NodeId Filter(NodeId input, Predicate predicate, std::string name = "");
  NodeId Project(NodeId input, std::vector<AttrId> keep,
                 std::string name = "");
  // In-place transform of `attr` (U(T, a) with b == a).
  NodeId Transform(NodeId input, AttrId attr, std::function<Value(Value)> fn,
                   std::string name = "");
  // Derived-attribute transform: appends `derived` computed from `from`.
  NodeId DeriveAttr(NodeId input, AttrId from, AttrId derived,
                    std::function<Value(Value)> fn, std::string name = "");
  // Black-box aggregate UDF over `attr` (blocking; ends a block).
  NodeId AggregateUdf(NodeId input, AttrId attr,
                      std::function<Value(Value)> fn, std::string name = "");
  NodeId Aggregate(NodeId input, std::vector<AttrId> group_by,
                   AttrId count_attr = kInvalidAttr, std::string name = "");
  NodeId Join(NodeId left, NodeId right, AttrId attr,
              JoinOptions options = {}, std::string name = "");
  NodeId Materialize(NodeId input, const std::string& target_name);
  // Overrides the physical join implementation of an already-added join.
  void SetJoinAlgorithm(NodeId join, JoinAlgorithm algorithm);
  NodeId Sink(NodeId input, const std::string& target_name);

  // Validates and finalizes. The builder is consumed.
  Result<Workflow> Build() &&;

 private:
  NodeId Add(WorkflowNode node);
  std::string AutoName(const char* prefix);

  Workflow wf_;
  int name_counter_ = 0;
};

}  // namespace etlopt

#endif  // ETLOPT_ETL_WORKFLOW_BUILDER_H_
