#ifndef ETLOPT_OBS_RUN_REPORT_H_
#define ETLOPT_OBS_RUN_REPORT_H_

#include <string>
#include <vector>

#include "obs/ledger.h"
#include "util/json.h"

namespace etlopt {
namespace obs {

struct RunReportOptions {
  // Worst-calibrated operator classes listed per workflow.
  int top_k = 5;
};

// The advisor's offline accuracy dashboard: everything below is computed
// from ledger records alone (profiles carry the predictions that were live
// at run time), so the report needs neither the workflow file nor the
// sources. Per workflow fingerprint it renders, across runs:
//   - cardinality q-error (estimated vs actual SE rows) and plan cost
//     q-error (predicted vs measured operator ns) trends,
//   - the top-k worst-calibrated operator classes against a calibration
//     re-fit from the same records,
//   - drift events, recomputed by replaying the drift detector over each
//     run against its history prefix,
//   - sketch/partial/build-provenance annotations that qualify how much the
//     numbers can be trusted.
std::string FormatRunReportMarkdown(const std::vector<RunRecord>& records,
                                    const RunReportOptions& options = {});

// The same dashboard as a machine-readable document (one "workflows" entry
// per fingerprint).
Json RunReportJson(const std::vector<RunRecord>& records,
                   const RunReportOptions& options = {});

}  // namespace obs
}  // namespace etlopt

#endif  // ETLOPT_OBS_RUN_REPORT_H_
