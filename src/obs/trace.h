#ifndef ETLOPT_OBS_TRACE_H_
#define ETLOPT_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace etlopt {
namespace obs {

// One recorded event, ready for Chrome trace_event serialization. The
// default phase is "X" (a complete span, the ScopedSpan product); "C"
// counter events carry numeric series in their args instead of a duration
// (the profiler's per-operator export). Span nesting is implied by
// timestamp containment per thread, which is how chrome://tracing and
// Perfetto reconstruct the hierarchy.
struct TraceEvent {
  const char* name;  // must outlive the tracer (string literals)
  int64_t start_ns;  // relative to tracer epoch
  int64_t dur_ns;
  int tid;
  char ph = 'X';     // trace_event phase: 'X' complete, 'C' counter
  // Pre-rendered JSON values: (key, value-token) where value-token is a
  // number or a quoted string.
  std::vector<std::pair<std::string, std::string>> args;
};

// Collects spans process-wide. Off by default (spans are unbounded memory);
// the advisor/test harness turns it on when a --trace-out is requested.
class Tracer {
 public:
  static Tracer& Global();

  void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  int64_t NowNs() const;
  int CurrentTid();
  void Append(TraceEvent event);

  // Registers an in-flight span so aborted runs still serialize it (as a
  // "ph":"B" begin event). Returns a token for AppendAndResolve.
  int64_t RegisterOpen(const char* name, int64_t start_ns);
  // Completes an open span: removes it from the open set and appends the
  // finished event, under one lock.
  void AppendAndResolve(int64_t open_id, TraceEvent event);

  size_t NumEvents() const;
  size_t NumOpenSpans() const;
  void Clear();

  // Full Chrome trace JSON ({"traceEvents":[...]}): loadable in
  // chrome://tracing and ui.perfetto.dev. ts/dur are microseconds. The
  // document leads with "ph":"M" metadata events naming the process
  // ("etlopt") and every thread seen, so traces open with labeled rows.
  // Spans still open (a run aborted mid-span, or serialization from inside
  // a span) are emitted as unmatched "ph":"B" events, which both viewers
  // tolerate — a partial trace is always a complete JSON document.
  std::string ChromeTraceJson() const;

  // Crash-safe file dump: writes to "<path>.tmp" then renames, so an abort
  // mid-write never leaves a truncated JSON file for Perfetto to choke on.
  Status WriteChromeTrace(const std::string& path) const;

 private:
  struct OpenSpan {
    const char* name;
    int64_t start_ns;
    int tid;
  };

  Tracer();

  int TidLocked();  // CurrentTid body; caller holds mu_

  std::atomic<bool> enabled_{false};
  int64_t epoch_ns_ = 0;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::unordered_map<std::thread::id, int> tids_;
  std::unordered_map<int64_t, OpenSpan> open_spans_;
  int64_t next_open_id_ = 1;
};

#ifndef ETLOPT_OBS_DISABLED
// RAII span: records a complete event for its lexical scope when both the
// global obs switch and the tracer are enabled, and is two relaxed loads
// otherwise. `name` must be a string literal (or otherwise outlive the
// tracer).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    Tracer& tracer = Tracer::Global();
    if (ObsEnabled() && tracer.enabled()) {
      tracer_ = &tracer;
      name_ = name;
      start_ns_ = tracer.NowNs();
      open_id_ = tracer.RegisterOpen(name, start_ns_);
    }
  }

  ~ScopedSpan() {
    if (tracer_ == nullptr) return;
    TraceEvent event;
    event.name = name_;
    event.start_ns = start_ns_;
    event.dur_ns = tracer_->NowNs() - start_ns_;
    event.tid = tracer_->CurrentTid();
    event.args = std::move(args_);
    tracer_->AppendAndResolve(open_id_, std::move(event));
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return tracer_ != nullptr; }

  void Arg(const std::string& key, int64_t value) {
    if (tracer_ != nullptr) args_.emplace_back(key, std::to_string(value));
  }
  void Arg(const std::string& key, double value) {
    if (tracer_ != nullptr) args_.emplace_back(key, std::to_string(value));
  }
  void Arg(const std::string& key, const std::string& value);

 private:
  Tracer* tracer_ = nullptr;
  const char* name_ = nullptr;
  int64_t start_ns_ = 0;
  int64_t open_id_ = 0;
  std::vector<std::pair<std::string, std::string>> args_;
};
#else
// Compile-time disabled: an empty object the optimizer deletes entirely.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char*) {}
  bool active() const { return false; }
  void Arg(const std::string&, int64_t) {}
  void Arg(const std::string&, double) {}
  void Arg(const std::string&, const std::string&) {}
};
#endif  // ETLOPT_OBS_DISABLED

}  // namespace obs
}  // namespace etlopt

// Anonymous scoped span for sites that don't attach args.
#define ETLOPT_OBS_CONCAT_INNER(a, b) a##b
#define ETLOPT_OBS_CONCAT(a, b) ETLOPT_OBS_CONCAT_INNER(a, b)
#define ETLOPT_TRACE_SPAN(name)            \
  ::etlopt::obs::ScopedSpan ETLOPT_OBS_CONCAT(etlopt_obs_span_, \
                                              __COUNTER__)(name)

#endif  // ETLOPT_OBS_TRACE_H_
