#ifndef ETLOPT_OPT_GREEDY_SELECTOR_H_
#define ETLOPT_OPT_GREEDY_SELECTOR_H_

#include "opt/selection.h"

namespace etlopt {

// The greedy heuristic of Section 5.3: in each round, cover one still-
// uncovered required statistic with its cheapest observation bundle under
// *residual* costs (statistics already chosen cost nothing more, which gives
// the amortization the paper motivates with Figure 7). Bundle costs are
// computed with a Knuth-style AND-OR shortest-derivation pass over the CSS
// graph. A reverse-delete pass then removes redundant observations.
SelectionResult SelectGreedy(const SelectionProblem& problem);

// Budgeted variant (Section 6.1): stops adding observations once the budget
// would be exceeded. Required statistics left uncovered are reported through
// `uncovered_required` (stat indices); the result is flagged infeasible when
// any remain. Pass an infinite budget to recover SelectGreedy.
SelectionResult SelectGreedyWithBudget(const SelectionProblem& problem,
                                       double budget,
                                       std::vector<int>* uncovered_required);

// Exhaustive minimum-cost search over subsets of observable statistics;
// exponential, only for small instances (testing / calibration). Instances
// with more than `max_candidates` observable statistics return an infeasible
// result.
SelectionResult SelectExhaustive(const SelectionProblem& problem,
                                 int max_candidates = 24);

}  // namespace etlopt

#endif  // ETLOPT_OPT_GREEDY_SELECTOR_H_
