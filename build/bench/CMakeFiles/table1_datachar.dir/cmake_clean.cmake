file(REMOVE_RECURSE
  "CMakeFiles/table1_datachar.dir/table1_datachar.cc.o"
  "CMakeFiles/table1_datachar.dir/table1_datachar.cc.o.d"
  "table1_datachar"
  "table1_datachar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_datachar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
