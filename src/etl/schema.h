#ifndef ETLOPT_ETL_SCHEMA_H_
#define ETLOPT_ETL_SCHEMA_H_

#include <string>
#include <vector>

#include "etl/attr_catalog.h"
#include "etl/types.h"
#include "util/bitmask.h"

namespace etlopt {

// An ordered list of attributes; row layout follows this order.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<AttrId> attrs);

  // Position of `attr` in rows, or -1 when absent.
  int IndexOf(AttrId attr) const;
  bool Contains(AttrId attr) const { return IndexOf(attr) >= 0; }
  bool ContainsAll(AttrMask mask) const { return IsSubset(mask, mask_); }

  AttrMask mask() const { return mask_; }
  const std::vector<AttrId>& attrs() const { return attrs_; }
  int size() const { return static_cast<int>(attrs_.size()); }

  std::string ToString(const AttrCatalog& catalog) const;

  bool operator==(const Schema& other) const { return attrs_ == other.attrs_; }

 private:
  std::vector<AttrId> attrs_;
  AttrMask mask_ = 0;
};

}  // namespace etlopt

#endif  // ETLOPT_ETL_SCHEMA_H_
