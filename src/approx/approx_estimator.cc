#include "approx/approx_estimator.h"

#include <cmath>
#include <deque>

#include "opt/closure.h"
#include "planspace/observability.h"

namespace etlopt {

ApproxEstimator::ApproxEstimator(const BlockContext* ctx,
                                 const CssCatalog* catalog,
                                 const ApproxConfig* config)
    : ctx_(ctx), catalog_(catalog), config_(config) {
  ETLOPT_CHECK(ctx_ != nullptr && catalog_ != nullptr && config_ != nullptr);
}

Status ApproxEstimator::ObserveAndDerive(const ExecutionResult& exec,
                                         const std::vector<StatKey>& keys) {
  values_.clear();

  // ---- observation with bucketized collectors ----
  for (const StatKey& key : keys) {
    if (!IsObservable(key, *ctx_)) {
      return Status::InvalidArgument("statistic not observable: " +
                                     key.ToString());
    }
    if (key.is_reject()) {
      return Status::Unimplemented(
          "union-division statistics are not supported in approximate mode "
          "(generate CSS with enable_union_division=false)");
    }
    NodeId node = kInvalidNode;
    if (key.is_chain_stage()) {
      node = ctx_->StageNode(LowestBit(key.rels), key.stage);
    } else {
      auto it = ctx_->on_path().find(key.rels);
      if (it == ctx_->on_path().end()) {
        return Status::InvalidArgument("SE not on-path: " + key.ToString());
      }
      node = it->second;
    }
    const Table& table = exec.node_outputs.at(node);
    switch (key.kind) {
      case StatKind::kCard:
        values_[key] =
            ApproxValue::Count(static_cast<double>(table.num_rows()));
        break;
      case StatKind::kDistinct:
        // Distinct counters use a hash set and stay exact.
        values_[key] = ApproxValue::Count(
            static_cast<double>(table.CountDistinct(key.attrs)));
        break;
      case StatKind::kHist:
        values_[key] = ApproxValue::Hist(
            DHistogram::FromTable(table, key.attrs, *config_));
        break;
      default:
        return Status::Internal("unexpected statistic kind");
    }
  }

  // ---- derivation along the closure order ----
  const int n = catalog_->num_stats();
  std::vector<char> observed(static_cast<size_t>(n), 0);
  for (int s = 0; s < n; ++s) {
    if (values_.count(catalog_->stat(s))) observed[static_cast<size_t>(s)] = 1;
  }
  std::vector<int> derivation;
  const std::vector<char> computable =
      ComputeClosure(*catalog_, observed, &derivation);

  std::deque<int> pending;
  for (int s = 0; s < n; ++s) {
    if (computable[static_cast<size_t>(s)] &&
        !observed[static_cast<size_t>(s)]) {
      pending.push_back(s);
    }
  }
  size_t stall = 0;
  while (!pending.empty()) {
    if (stall > pending.size()) {
      return Status::Internal("cyclic derivation during approx estimation");
    }
    const int s = pending.front();
    pending.pop_front();
    const CssEntry& entry =
        catalog_->entry(derivation[static_cast<size_t>(s)]);
    bool ready = true;
    for (const StatKey& in : entry.inputs) {
      if (!values_.count(in)) {
        ready = false;
        break;
      }
    }
    if (!ready) {
      pending.push_back(s);
      ++stall;
      continue;
    }
    stall = 0;
    ETLOPT_ASSIGN_OR_RETURN(ApproxValue value, Evaluate(entry));
    values_[entry.target] = std::move(value);
  }
  return Status::OK();
}

Result<ApproxValue> ApproxEstimator::Evaluate(const CssEntry& entry) const {
  auto count_in = [&](int i) -> double {
    return values_.at(entry.inputs[static_cast<size_t>(i)]).count();
  };
  auto hist_in = [&](int i) -> const DHistogram& {
    return values_.at(entry.inputs[static_cast<size_t>(i)]).hist();
  };
  switch (entry.rule) {
    case RuleId::kS1: {
      const WorkflowNode& op = ctx_->workflow().node(entry.op_node);
      return ApproxValue::Count(hist_in(0).CountMatching(op.predicate));
    }
    case RuleId::kS2: {
      const WorkflowNode& op = ctx_->workflow().node(entry.op_node);
      return ApproxValue::Hist(
          hist_in(0).FilterThenMarginalize(op.predicate, entry.target.attrs));
    }
    case RuleId::kCopyCard:
    case RuleId::kG1:
    case RuleId::kFk:
      return ApproxValue::Count(count_in(0));
    case RuleId::kCopyHist:
      return ApproxValue::Hist(hist_in(0));
    case RuleId::kG2:
      return ApproxValue::Hist(
          hist_in(0).CollapseToDistinct().Marginalize(entry.target.attrs));
    case RuleId::kJ1:
      return ApproxValue::Count(
          DHistogram::JoinCardinality(hist_in(0), hist_in(1)));
    case RuleId::kJ2: {
      DHistogram combined =
          DHistogram::MultiplyThrough(hist_in(0), hist_in(1));
      if (entry.marginalize) {
        combined = combined.Marginalize(entry.target.attrs);
      }
      return ApproxValue::Hist(std::move(combined));
    }
    case RuleId::kI1:
      return ApproxValue::Count(hist_in(0).TotalCount());
    case RuleId::kI2:
      return ApproxValue::Hist(hist_in(0).Marginalize(entry.target.attrs));
    case RuleId::kD1:
      // Bucket count lower-bounds the distinct count (approximation).
      return ApproxValue::Count(
          static_cast<double>(hist_in(0).NumBuckets()));
    case RuleId::kJ4:
    case RuleId::kJ5:
      return Status::Unimplemented(
          "union-division rules are not evaluable in approximate mode");
  }
  return Status::Internal("unhandled rule");
}

Result<double> ApproxEstimator::Cardinality(RelMask se) const {
  return Count(StatKey::Card(se));
}

Result<double> ApproxEstimator::Count(const StatKey& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return Status::NotFound(key.ToString());
  if (!it->second.is_count()) {
    return Status::Internal("statistic is not a count: " + key.ToString());
  }
  return it->second.count();
}

Result<std::unordered_map<RelMask, int64_t>>
ApproxEstimator::AllCardinalities(
    const std::vector<RelMask>& subexpressions) const {
  std::unordered_map<RelMask, int64_t> out;
  for (RelMask se : subexpressions) {
    ETLOPT_ASSIGN_OR_RETURN(const double card, Cardinality(se));
    out[se] = static_cast<int64_t>(std::llround(card));
  }
  return out;
}

}  // namespace etlopt
