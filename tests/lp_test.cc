#include <gtest/gtest.h>

#include "lp/ilp.h"
#include "lp/simplex.h"

namespace etlopt {
namespace {

TEST(SimplexTest, SimpleMinimization) {
  // min x + 2y  s.t. x + y >= 4, x <= 3, y <= 3, x,y >= 0.
  LinearProgram lp;
  const int x = lp.AddVariable(1.0, 0.0, 3.0);
  const int y = lp.AddVariable(2.0, 0.0, 3.0);
  lp.AddConstraint({{{x, 1.0}, {y, 1.0}}, ConstraintSense::kGreaterEqual, 4.0});
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 5.0, 1e-6);  // x=3, y=1
  EXPECT_NEAR(sol.values[static_cast<size_t>(x)], 3.0, 1e-6);
  EXPECT_NEAR(sol.values[static_cast<size_t>(y)], 1.0, 1e-6);
}

TEST(SimplexTest, EqualityConstraint) {
  // min 3a + b  s.t. a + b = 10, a >= 2.
  LinearProgram lp;
  const int a = lp.AddVariable(3.0, 2.0, LinearProgram::kInfinity);
  const int b = lp.AddVariable(1.0);
  lp.AddConstraint({{{a, 1.0}, {b, 1.0}}, ConstraintSense::kEqual, 10.0});
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 3.0 * 2 + 8.0, 1e-6);
}

TEST(SimplexTest, DetectsInfeasible) {
  // x <= 1 and x >= 3.
  LinearProgram lp;
  const int x = lp.AddVariable(1.0);
  lp.AddConstraint({{{x, 1.0}}, ConstraintSense::kLessEqual, 1.0});
  lp.AddConstraint({{{x, 1.0}}, ConstraintSense::kGreaterEqual, 3.0});
  EXPECT_EQ(SolveLp(lp).status, LpStatus::kInfeasible);
}

TEST(SimplexTest, DetectsUnbounded) {
  // min -x with x unbounded above.
  LinearProgram lp;
  const int x = lp.AddVariable(-1.0);
  lp.AddConstraint({{{x, 1.0}}, ConstraintSense::kGreaterEqual, 0.0});
  EXPECT_EQ(SolveLp(lp).status, LpStatus::kUnbounded);
}

TEST(SimplexTest, FixedVariablesSubstituted) {
  // y fixed at 2: min x + y s.t. x + y >= 5 -> x = 3.
  LinearProgram lp;
  const int x = lp.AddVariable(1.0);
  const int y = lp.AddVariable(1.0, 2.0, 2.0);
  lp.AddConstraint({{{x, 1.0}, {y, 1.0}}, ConstraintSense::kGreaterEqual, 5.0});
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.values[static_cast<size_t>(x)], 3.0, 1e-6);
  EXPECT_NEAR(sol.values[static_cast<size_t>(y)], 2.0, 1e-6);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Multiple redundant constraints (classic degeneracy trigger).
  LinearProgram lp;
  const int x = lp.AddVariable(1.0);
  const int y = lp.AddVariable(1.0);
  for (int i = 0; i < 6; ++i) {
    lp.AddConstraint(
        {{{x, 1.0}, {y, 1.0}}, ConstraintSense::kGreaterEqual, 2.0});
  }
  lp.AddConstraint({{{x, 1.0}}, ConstraintSense::kLessEqual, 2.0});
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 2.0, 1e-6);
}

TEST(IlpTest, BinaryCover) {
  // Weighted set cover: elements {1,2,3}; sets A={1,2} c=3, B={2,3} c=4,
  // C={1,3} c=2, D={2} c=1. Optimum: C + D = 3.
  LinearProgram lp;
  const int a = lp.AddVariable(3.0, 0.0, 1.0);
  const int b = lp.AddVariable(4.0, 0.0, 1.0);
  const int c = lp.AddVariable(2.0, 0.0, 1.0);
  const int d = lp.AddVariable(1.0, 0.0, 1.0);
  lp.AddConstraint({{{a, 1.0}, {c, 1.0}}, ConstraintSense::kGreaterEqual, 1.0});
  lp.AddConstraint(
      {{{a, 1.0}, {b, 1.0}, {d, 1.0}}, ConstraintSense::kGreaterEqual, 1.0});
  lp.AddConstraint({{{b, 1.0}, {c, 1.0}}, ConstraintSense::kGreaterEqual, 1.0});
  const IlpSolution sol = SolveIlp(lp, {a, b, c, d});
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_TRUE(sol.proven_optimal);
  EXPECT_NEAR(sol.objective, 3.0, 1e-6);
  EXPECT_GT(sol.values[static_cast<size_t>(c)], 0.5);
  EXPECT_GT(sol.values[static_cast<size_t>(d)], 0.5);
}

TEST(IlpTest, KnapsackLikeBranching) {
  // min 5x + 4y + 3z s.t. 2x + 3y + z >= 4, binary. LP relaxation is
  // fractional; ILP must branch. Optimum: y + z (cost 7) vs x + y (9) vs
  // x + z (8) vs ... check 7.
  LinearProgram lp;
  const int x = lp.AddVariable(5.0, 0.0, 1.0);
  const int y = lp.AddVariable(4.0, 0.0, 1.0);
  const int z = lp.AddVariable(3.0, 0.0, 1.0);
  lp.AddConstraint(
      {{{x, 2.0}, {y, 3.0}, {z, 1.0}}, ConstraintSense::kGreaterEqual, 4.0});
  const IlpSolution sol = SolveIlp(lp, {x, y, z});
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 7.0, 1e-6);
}

TEST(IlpTest, IncumbentFilterForcesAlternative) {
  // Two equal-cost solutions; filter rejects the one with x=1.
  LinearProgram lp;
  const int x = lp.AddVariable(1.0, 0.0, 1.0);
  const int y = lp.AddVariable(1.0, 0.0, 1.0);
  lp.AddConstraint({{{x, 1.0}, {y, 1.0}}, ConstraintSense::kGreaterEqual, 1.0});
  IlpOptions options;
  options.incumbent_filter = [&](const std::vector<double>& v) {
    return v[static_cast<size_t>(x)] < 0.5;  // only y-solutions allowed
  };
  const IlpSolution sol = SolveIlp(lp, {x, y}, options);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_LT(sol.values[static_cast<size_t>(x)], 0.5);
  EXPECT_GT(sol.values[static_cast<size_t>(y)], 0.5);
}

TEST(IlpTest, WarmStartPrunes) {
  LinearProgram lp;
  const int x = lp.AddVariable(2.0, 0.0, 1.0);
  const int y = lp.AddVariable(3.0, 0.0, 1.0);
  lp.AddConstraint({{{x, 1.0}, {y, 1.0}}, ConstraintSense::kGreaterEqual, 1.0});
  IlpOptions options;
  options.initial_incumbent = {1.0, 1.0};  // cost 5, suboptimal
  const IlpSolution sol = SolveIlp(lp, {x, y}, options);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 2.0, 1e-6);
}

TEST(IlpTest, InfeasibleIntegerProgram) {
  LinearProgram lp;
  const int x = lp.AddVariable(1.0, 0.0, 1.0);
  lp.AddConstraint({{{x, 1.0}}, ConstraintSense::kGreaterEqual, 2.0});
  const IlpSolution sol = SolveIlp(lp, {x});
  EXPECT_EQ(sol.status, LpStatus::kInfeasible);
}

}  // namespace
}  // namespace etlopt
