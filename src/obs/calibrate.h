#ifndef ETLOPT_OBS_CALIBRATE_H_
#define ETLOPT_OBS_CALIBRATE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/ledger.h"
#include "obs/profile.h"
#include "util/json.h"
#include "util/status.h"

namespace etlopt {
namespace obs {

// Measured cost-model overlay: nanoseconds per row for each operator class,
// regressed from the per-operator profiles of prior ledger runs. The fit is
// a ratio estimator — ns_per_row = total self ns / total rows per class —
// which minimizes the per-plan prediction error on the fitting data and is
// robust to the per-op timing noise of short operators.
//
// An *unfitted* class predicts with a deliberately pessimistic default
// (kDefaultNsPerRow), the same philosophy as the selection cost model's
// default_se_size: before measurement the model should over-budget, and the
// first calibrated run should visibly shrink the cost q-error.
struct CostCalibration {
  struct ClassFit {
    int64_t rows = 0;       // total profiled weight the fit saw
    int64_t ns = 0;         // total self ns
    double ns_per_row = 0.0;
  };

  // Operator class ("Join", "Filter", ...) -> fit. The pseudo-class "tap"
  // carries the instrumentation overhead fit (observe ns per tapped row),
  // which is what the selection cost table consumes.
  std::map<std::string, ClassFit> classes;
  int runs = 0;              // ledger records that contributed
  std::string fingerprint;   // workflow the fit came from ("" = mixed)

  static constexpr double kDefaultNsPerRow = 10000.0;

  bool empty() const { return classes.empty(); }

  // Fitted ns/row for a class; kDefaultNsPerRow when unfitted.
  double NsPerRow(const std::string& op) const;
  // Predicted operator cost for `rows` of profiled weight.
  double PredictNs(const std::string& op, int64_t rows) const;

  Json ToJson() const;
  static Result<CostCalibration> FromJson(const Json& j);

  // JSON file round trip (Save is plain write — the overlay is a derived
  // artifact, regenerable from the ledger).
  Status Save(const std::string& path) const;
  static Result<CostCalibration> Load(const std::string& path);

  // ETLOPT_CALIBRATION names an overlay file to load at startup; unset (or
  // unreadable) yields an empty calibration.
  static CostCalibration FromEnv();

  std::string ToText() const;
};

// Fits a calibration from every record carrying a non-empty profile.
// Records without profiles are skipped; the result's `runs` counts the
// contributors. The fit is work-based, not wall-time-based: a parallel
// run's merged profile sums per-worker self times at the merge barrier, so
// each op's self_ns is total CPU work regardless of how many threads ran
// it, and ns/row from a --threads=N run is directly comparable with a
// serial one. (Wall times are NOT — the report flags threads-mismatch.)
CostCalibration FitCalibration(const std::vector<RunRecord>& records);

// Stamps each op's pred_ns (and nothing else) with the calibrated
// prediction, making the profile self-contained for offline cost q-error:
// `advisor report` recomputes accuracy from the ledger without knowing
// which overlay was active at run time.
void AnnotatePredictions(const CostCalibration& calibration,
                         RunProfile* profile);

// Per-plan cost q-error: q(sum of predictions, sum of measured self ns)
// over annotated ops. 0.0 when nothing is annotated.
double PlanCostQError(const RunProfile& profile);

// Feeds per-operator ("cost", depth 0) and per-plan ("plan_cost") q-errors
// of an annotated profile into the global AccuracyTracker, alongside the
// cardinality samples.
void RecordCostAccuracy(const RunProfile& profile);

}  // namespace obs
}  // namespace etlopt

#endif  // ETLOPT_OBS_CALIBRATE_H_
