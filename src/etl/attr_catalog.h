#ifndef ETLOPT_ETL_ATTR_CATALOG_H_
#define ETLOPT_ETL_ATTR_CATALOG_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "etl/types.h"
#include "util/bitmask.h"
#include "util/common.h"

namespace etlopt {

// Metadata for one attribute. `domain_size` is |a| in the paper: the number
// of possible values of the attribute over all relations; values are drawn
// from {1, ..., domain_size}. It drives the memory cost of histograms
// (Section 5.4).
struct AttrInfo {
  std::string name;
  int64_t domain_size = 0;
};

// Workflow-global attribute registry. At most 64 attributes per workflow so
// attribute sets fit in an AttrMask.
class AttrCatalog {
 public:
  static constexpr int kMaxAttrs = 64;

  // Registers a new attribute; aborts on duplicates or overflow (these are
  // programming errors in workflow construction).
  AttrId Register(const std::string& name, int64_t domain_size);

  // Returns kInvalidAttr when the name is unknown.
  AttrId Lookup(const std::string& name) const;

  const AttrInfo& info(AttrId id) const {
    ETLOPT_CHECK(id >= 0 && id < size());
    return attrs_[static_cast<size_t>(id)];
  }

  const std::string& name(AttrId id) const { return info(id).name; }
  int64_t domain_size(AttrId id) const { return info(id).domain_size; }

  int size() const { return static_cast<int>(attrs_.size()); }

  // Product of domain sizes over the attributes in `mask` — the memory cost
  // of a (multi-attribute) histogram per Section 5.4. Saturates at INT64_MAX.
  int64_t DomainProduct(AttrMask mask) const;

  // Renders a mask like "{cust_id,prod_id}".
  std::string MaskToString(AttrMask mask) const;

 private:
  std::vector<AttrInfo> attrs_;
  std::unordered_map<std::string, AttrId> by_name_;
};

}  // namespace etlopt

#endif  // ETLOPT_ETL_ATTR_CATALOG_H_
