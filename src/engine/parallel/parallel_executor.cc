#include "engine/parallel/parallel_executor.h"

#include <algorithm>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/parallel/partition.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "util/common.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/random.h"

namespace etlopt {
namespace parallel {
namespace {

// Where a node executes. kPre nodes run serially before the partition
// phase (sources, and chains feeding broadcast build sides); kPartitioned
// nodes run per-partition on the pool; kPost nodes run serially on the
// gathered outputs after the merge barrier.
enum class Mode : uint8_t { kPre = 0, kPartitioned, kPost };

struct NodeClass {
  Mode mode = Mode::kPre;
  // True while partition placement still equals hash(partition attr) of the
  // row's current key value — the precondition for co-partitioned joins. A
  // transform that rewrites the key in place clears it.
  bool copart = false;
};

std::vector<NodeClass> Classify(const Workflow& wf, AttrId p) {
  std::vector<NodeClass> classes(static_cast<size_t>(wf.num_nodes()));
  for (const WorkflowNode& node : wf.nodes()) {
    NodeClass cls;
    auto in_class = [&](int i) -> const NodeClass& {
      return classes[static_cast<size_t>(node.inputs[static_cast<size_t>(i)])];
    };
    switch (node.kind) {
      case OpKind::kSource:
        cls.mode = node.source_schema.Contains(p) ? Mode::kPartitioned
                                                  : Mode::kPre;
        cls.copart = cls.mode == Mode::kPartitioned;
        break;
      case OpKind::kFilter:
      case OpKind::kProject:
      case OpKind::kMaterialize:
      case OpKind::kSink:
        cls = in_class(0);
        break;
      case OpKind::kTransform:
        if (node.transform.is_aggregate) {
          // Blocking reduction whose surviving rows depend on input order:
          // runs serially on the gathered (serial-order) input.
          cls.mode =
              in_class(0).mode == Mode::kPre ? Mode::kPre : Mode::kPost;
          cls.copart = false;
        } else {
          cls = in_class(0);
          // Rewriting the partition key in place invalidates placement.
          if (node.transform.output_attr == p) cls.copart = false;
        }
        break;
      case OpKind::kAggregate:
        cls.mode = in_class(0).mode == Mode::kPre ? Mode::kPre : Mode::kPost;
        cls.copart = false;
        break;
      case OpKind::kJoin: {
        const NodeClass& left = in_class(0);
        const NodeClass& right = in_class(1);
        if (left.mode == Mode::kPre && right.mode == Mode::kPre) {
          cls.mode = Mode::kPre;
        } else if (left.mode == Mode::kPartitioned &&
                   node.join.algorithm != JoinAlgorithm::kSortMerge &&
                   ((right.mode == Mode::kPartitioned && node.join.attr == p &&
                     left.copart && right.copart) ||
                    right.mode == Mode::kPre)) {
          // Co-partitioned on the partition key, or partitioned probe
          // against a broadcast build side computed in the pre phase.
          // Sort-merge joins gather instead: their (sorted) row order is
          // kept exact by running the serial kernel.
          cls.mode = Mode::kPartitioned;
          cls.copart = left.copart;
        } else {
          cls.mode = Mode::kPost;
        }
        break;
      }
    }
    classes[static_cast<size_t>(node.id)] = cls;
  }
  return classes;
}

int CountPartitionedOperators(const Workflow& wf,
                              const std::vector<NodeClass>& classes) {
  int count = 0;
  for (const WorkflowNode& node : wf.nodes()) {
    if (node.kind != OpKind::kSource &&
        classes[static_cast<size_t>(node.id)].mode == Mode::kPartitioned) {
      ++count;
    }
  }
  return count;
}

// The candidate key that partitions the most operators wins; ties go to the
// smallest attribute id so the choice is stable run to run. Returns
// kInvalidAttr when no candidate partitions any non-source operator.
AttrId ChoosePartitionAttr(const Workflow& wf,
                           std::vector<NodeClass>* best_classes) {
  std::vector<AttrId> candidates;
  for (const WorkflowNode& node : wf.nodes()) {
    if (node.kind == OpKind::kJoin) candidates.push_back(node.join.attr);
    if (node.kind == OpKind::kSource) {
      const auto& attrs = node.source_schema.attrs();
      candidates.insert(candidates.end(), attrs.begin(), attrs.end());
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  AttrId best = kInvalidAttr;
  int best_score = 0;
  for (AttrId a : candidates) {
    std::vector<NodeClass> classes = Classify(wf, a);
    const int score = CountPartitionedOperators(wf, classes);
    if (score > best_score) {
      best_score = score;
      best = a;
      *best_classes = std::move(classes);
    }
  }
  return best;
}

// A partition-local table plus per-row provenance: the original source row
// indices the row descends from, in join-nesting order. The serial executor
// emits rows in exactly lexicographic provenance order, so the merge
// barrier reassembles bit-identical tables by merging on it.
struct Slice {
  Table table;
  std::vector<std::vector<int64_t>> seq;
};

void AppendRow(Slice* out, std::vector<Value> row,
               std::vector<int64_t> seq) {
  out->table.AddRow(std::move(row));
  out->seq.push_back(std::move(seq));
}

Slice ApplyFilterSlice(const WorkflowNode& node, const Schema& out_schema,
                       const Slice& in) {
  Slice out{Table{out_schema}, {}};
  const int col = in.table.schema().IndexOf(node.predicate.attr);
  if (VectorizedKernels()) {
    SelVector sel;
    BuildSelection(node.predicate, in.table.column_data(col),
                   in.table.num_rows(), &sel);
    out.table = Table::Gather(in.table, sel);
    out.seq.reserve(sel.size());
    for (int64_t r : sel) out.seq.push_back(in.seq[static_cast<size_t>(r)]);
    return out;
  }
  for (int64_t r = 0; r < in.table.num_rows(); ++r) {
    if (node.predicate.Matches(in.table.at(r, col))) {
      out.table.AppendRowFrom(in.table, r);
      out.seq.push_back(in.seq[static_cast<size_t>(r)]);
    }
  }
  return out;
}

Slice ApplyProjectSlice(const WorkflowNode& node, const Schema& out_schema,
                        const Slice& in) {
  std::vector<int> cols;
  for (AttrId a : node.keep) cols.push_back(in.table.schema().IndexOf(a));
  if (VectorizedKernels()) {
    // Copy-free: the kept columns are shared, not duplicated.
    std::vector<ColumnPtr> kept;
    kept.reserve(cols.size());
    for (int c : cols) kept.push_back(in.table.shared_column(c));
    return Slice{
        Table::FromColumns(out_schema, std::move(kept), in.table.num_rows()),
        in.seq};
  }
  Slice out{Table{out_schema}, in.seq};
  for (int64_t r = 0; r < in.table.num_rows(); ++r) {
    std::vector<Value> projected;
    projected.reserve(cols.size());
    for (int c : cols) projected.push_back(in.table.at(r, c));
    out.table.AddRow(std::move(projected));
  }
  return out;
}

Slice ApplyTransformSlice(const WorkflowNode& node, const Schema& out_schema,
                          const Slice& in) {
  const TransformSpec& t = node.transform;
  const int col = in.table.schema().IndexOf(t.input_attr);
  const bool in_place = t.output_attr == t.input_attr;
  if (VectorizedKernels()) {
    Column mapped;
    MapColumn(t.fn, in.table.column_data(col), in.table.num_rows(), &mapped);
    ColumnPtr mapped_col = std::make_shared<Column>(std::move(mapped));
    std::vector<ColumnPtr> cols;
    cols.reserve(static_cast<size_t>(in.table.num_columns()) +
                 (in_place ? 0 : 1));
    for (int c = 0; c < in.table.num_columns(); ++c) {
      cols.push_back(in_place && c == col ? mapped_col
                                          : in.table.shared_column(c));
    }
    if (!in_place) cols.push_back(std::move(mapped_col));
    return Slice{
        Table::FromColumns(out_schema, std::move(cols), in.table.num_rows()),
        in.seq};
  }
  Slice out{Table{out_schema}, in.seq};
  for (int64_t r = 0; r < in.table.num_rows(); ++r) {
    std::vector<Value> row = in.table.row(r);
    if (in_place) {
      row[static_cast<size_t>(col)] = t.fn(row[static_cast<size_t>(col)]);
    } else {
      row.push_back(t.fn(row[static_cast<size_t>(col)]));
    }
    out.table.AddRow(std::move(row));
  }
  return out;
}

Slice CopySlice(const Schema& out_schema, const Slice& in) {
  Slice out{Table{out_schema}, in.seq};
  out.table.AppendRows(in.table);
  return out;
}

// Partition-local hash join, seq-threading the serial kernel's emission
// structure: probe rows in slice order, matches in build-insertion order.
// `right_seq` is null for a broadcast build side, whose provenance is its
// (serial) row index. `rejects` receives unmatched probe rows; `rrejects`
// (co-partitioned only — a broadcast build side sees every partition's
// keys) receives build rows whose key never occurs in the probe slice.
Slice ApplyJoinSlice(const WorkflowNode& node, const Schema& out_schema,
                     const Slice& left, const Table& right,
                     const std::vector<std::vector<int64_t>>* right_seq,
                     Slice* rejects, Slice* rrejects) {
  const int lkey = left.table.schema().IndexOf(node.join.attr);
  const int rkey = right.schema().IndexOf(node.join.attr);
  ETLOPT_CHECK_MSG(lkey >= 0 && rkey >= 0, "join key missing from an input");
  std::vector<int> right_cols;
  for (int i = 0; i < right.schema().size(); ++i) {
    if (right.schema().attrs()[static_cast<size_t>(i)] != node.join.attr) {
      right_cols.push_back(i);
    }
  }
  auto right_seq_of = [&](int64_t r) -> std::vector<int64_t> {
    return right_seq != nullptr ? (*right_seq)[static_cast<size_t>(r)]
                                : std::vector<int64_t>{r};
  };

  if (VectorizedKernels()) {
    // Same emission structure as the map-based kernel: probe rows in slice
    // order, each key's matches in build order (JoinHashTable groups keep
    // build insertion order), so the seq stream — and therefore the merge —
    // is bit-identical.
    Slice out{Table{out_schema}, {}};
    const JoinHashTable ht(right.column_data(rkey), right.num_rows());
    const Value* lvals = left.table.column_data(lkey);
    SelVector lsel;
    SelVector rsel;
    SelVector reject_sel;
    for (int64_t l = 0; l < left.table.num_rows(); ++l) {
      const JoinHashTable::RowRange range = ht.Lookup(lvals[l]);
      if (range.empty()) {
        if (rejects != nullptr) reject_sel.push_back(l);
        continue;
      }
      for (const int64_t* p = range.begin; p != range.end; ++p) {
        lsel.push_back(l);
        rsel.push_back(*p);
        std::vector<int64_t> seq = left.seq[static_cast<size_t>(l)];
        const std::vector<int64_t> rseq = right_seq_of(*p);
        seq.insert(seq.end(), rseq.begin(), rseq.end());
        out.seq.push_back(std::move(seq));
      }
    }
    std::vector<ColumnPtr> out_cols;
    out_cols.reserve(static_cast<size_t>(left.table.num_columns()) +
                     right_cols.size());
    for (int c = 0; c < left.table.num_columns(); ++c) {
      auto col = std::make_shared<Column>();
      GatherColumn(left.table.column(c), lsel, col.get());
      out_cols.push_back(std::move(col));
    }
    for (int c : right_cols) {
      auto col = std::make_shared<Column>();
      GatherColumn(right.column(c), rsel, col.get());
      out_cols.push_back(std::move(col));
    }
    out.table = Table::FromColumns(out_schema, std::move(out_cols),
                                   static_cast<int64_t>(lsel.size()));
    if (rejects != nullptr) {
      rejects->table = Table::Gather(left.table, reject_sel);
      rejects->seq.reserve(reject_sel.size());
      for (int64_t l : reject_sel) {
        rejects->seq.push_back(left.seq[static_cast<size_t>(l)]);
      }
    }
    if (rrejects != nullptr) {
      const JoinHashTable probed(left.table.column_data(lkey),
                                 left.table.num_rows());
      const Value* rvals = right.column_data(rkey);
      SelVector rr;
      for (int64_t r = 0; r < right.num_rows(); ++r) {
        if (!probed.Contains(rvals[r])) rr.push_back(r);
      }
      rrejects->table = Table::Gather(right, rr);
      rrejects->seq.reserve(rr.size());
      for (int64_t r : rr) rrejects->seq.push_back(right_seq_of(r));
    }
    return out;
  }

  Slice out{Table{out_schema}, {}};
  std::unordered_map<Value, std::vector<int64_t>> build;
  build.reserve(static_cast<size_t>(right.num_rows()));
  for (int64_t r = 0; r < right.num_rows(); ++r) {
    build[right.at(r, rkey)].push_back(r);
  }
  std::unordered_map<Value, bool> probed_keys;
  for (int64_t l = 0; l < left.table.num_rows(); ++l) {
    const Value key = left.table.at(l, lkey);
    if (rrejects != nullptr) probed_keys.emplace(key, true);
    const auto it = build.find(key);
    if (it == build.end()) {
      if (rejects != nullptr) {
        AppendRow(rejects, left.table.row(l), left.seq[static_cast<size_t>(l)]);
      }
      continue;
    }
    for (int64_t r : it->second) {
      std::vector<Value> row = left.table.row(l);
      row.reserve(row.size() + right_cols.size());
      for (int c : right_cols) row.push_back(right.at(r, c));
      std::vector<int64_t> seq = left.seq[static_cast<size_t>(l)];
      const std::vector<int64_t> rseq = right_seq_of(r);
      seq.insert(seq.end(), rseq.begin(), rseq.end());
      AppendRow(&out, std::move(row), std::move(seq));
    }
  }
  if (rrejects != nullptr) {
    for (int64_t r = 0; r < right.num_rows(); ++r) {
      if (probed_keys.find(right.at(r, rkey)) == probed_keys.end()) {
        rrejects->table.AppendRowFrom(right, r);
        rrejects->seq.push_back(right_seq_of(r));
      }
    }
  }
  return out;
}

// Reassembles partition slices into one table in provenance order (each
// slice is already provenance-sorted, so this is a k-way merge).
Table MergeSlicesBySeq(const Schema& schema, const std::vector<Slice>& slices) {
  Table out{schema};
  int64_t total = 0;
  for (const Slice& s : slices) total += s.table.num_rows();
  out.Reserve(static_cast<size_t>(total));
  std::vector<size_t> cursor(slices.size(), 0);
  for (;;) {
    int best = -1;
    for (size_t p = 0; p < slices.size(); ++p) {
      if (cursor[p] >= slices[p].seq.size()) continue;
      if (best < 0 || slices[p].seq[cursor[p]] <
                          slices[static_cast<size_t>(best)]
                              .seq[cursor[static_cast<size_t>(best)]]) {
        best = static_cast<int>(p);
      }
    }
    if (best < 0) break;
    const size_t b = static_cast<size_t>(best);
    out.AppendRowFrom(slices[b].table, static_cast<int64_t>(cursor[b]));
    ++cursor[b];
  }
  return out;
}

// The serial executor's in-switch rows_processed bookkeeping, applied to a
// gathered node at the merge barrier (FinishNodeStep covers everything
// after the switch).
void AccountRowsProcessed(const WorkflowNode& node, const Table& out,
                          ExecutionResult* result) {
  switch (node.kind) {
    case OpKind::kFilter:
    case OpKind::kProject:
    case OpKind::kTransform:
    case OpKind::kAggregate:
      result->rows_processed += result->node_outputs.at(node.inputs[0])
                                    .num_rows();
      break;
    case OpKind::kJoin:
      result->rows_processed +=
          result->node_outputs.at(node.inputs[0]).num_rows() +
          result->node_outputs.at(node.inputs[1]).num_rows();
      break;
    case OpKind::kMaterialize:
    case OpKind::kSink:
      result->rows_processed += out.num_rows();
      break;
    case OpKind::kSource:
      break;
  }
}

// One partition's view of the run: chain progress and per-node self time.
struct PartitionOutcome {
  bool completed = true;
  NodeId failed_node = kInvalidNode;
  std::unordered_map<NodeId, int64_t> self_ns;
};

}  // namespace

ParallelExecutor::ParallelExecutor(const Workflow* workflow,
                                   ParallelOptions options)
    : wf_(workflow), options_(std::move(options)) {
  ETLOPT_CHECK(wf_ != nullptr);
}

Result<ParallelResult> ParallelExecutor::Execute(const SourceMap& sources,
                                                 ThreadPool* pool) const {
  ParallelResult pres;
  const int threads = std::max(1, options_.num_threads);
  std::vector<NodeClass> classes;
  AttrId part_attr = kInvalidAttr;
  if (threads > 1) part_attr = ChoosePartitionAttr(*wf_, &classes);
  if (threads <= 1 || part_attr == kInvalidAttr) {
    // Nothing to fan out: the serial path, bit for bit.
    Executor serial(wf_, options_.executor);
    ETLOPT_ASSIGN_OR_RETURN(pres.exec, serial.Execute(sources));
    return pres;
  }
  const int num_partitions =
      options_.num_partitions > 0 ? options_.num_partitions : threads;
  pres.partition_attr = part_attr;
  pres.used_parallel_path = true;

  ExecutionResult& result = pres.exec;
  obs::ScopedSpan exec_span("engine.parallel_execute");
  exec_span.Arg("workflow", wf_->name());
  exec_span.Arg("nodes", static_cast<int64_t>(wf_->nodes().size()));
  exec_span.Arg("workers", static_cast<int64_t>(threads));
  exec_span.Arg("partitions", static_cast<int64_t>(num_partitions));
  result.nodes_total = static_cast<int>(wf_->nodes().size());
  result.num_workers = threads;
  result.partitions_total = num_partitions;

  fault::FaultInjector* inj = fault::FaultInjector::Global();
  const bool profiling = obs::ProfilerEnabled();
  Rng backoff_rng(inj != nullptr ? inj->seed() : 0x5eedULL);
  NodeStepContext ctx;
  ctx.wf = wf_;
  ctx.sources = &sources;
  ctx.options = &options_.executor;
  ctx.inj = inj;
  ctx.profiling = profiling;
  ctx.backoff_rng = &backoff_rng;
  ctx.result = &result;

  auto cls = [&](NodeId id) -> const NodeClass& {
    return classes[static_cast<size_t>(id)];
  };

  // ---- pre phase: sources and broadcast chains, fully serial -------------
  // Source reads keep the exact serial semantics (retry/backoff, row
  // quarantine, error-rate aborts, watermarks); a partitioned source's
  // published output is partitioned afterwards.
  for (const WorkflowNode& node : wf_->nodes()) {
    if (cls(node.id).mode == Mode::kPre ||
        (cls(node.id).mode == Mode::kPartitioned &&
         node.kind == OpKind::kSource)) {
      ETLOPT_RETURN_IF_ERROR(ExecuteNodeStep(ctx, node));
      if (result.aborted()) break;
    }
  }

  // The chain the workers run: partitioned non-source nodes in plan order.
  std::vector<const WorkflowNode*> chain;
  for (const WorkflowNode& node : wf_->nodes()) {
    if (cls(node.id).mode == Mode::kPartitioned &&
        node.kind != OpKind::kSource) {
      chain.push_back(&node);
    }
  }

  // Per-node slice stores, slot-per-partition so workers never contend.
  std::unordered_map<NodeId, std::vector<Slice>> slice_map;
  std::unordered_map<NodeId, std::vector<Slice>> reject_map;
  std::unordered_map<NodeId, std::vector<Slice>> rreject_map;
  std::vector<PartitionOutcome> outcomes(
      static_cast<size_t>(num_partitions));

  if (!result.aborted()) {
    // ---- partition the partitioned sources -------------------------------
    result.partition_rows.assign(static_cast<size_t>(num_partitions), 0);
    for (const WorkflowNode& node : wf_->nodes()) {
      if (node.kind != OpKind::kSource ||
          cls(node.id).mode != Mode::kPartitioned) {
        continue;
      }
      TablePartitions parts = HashPartition(result.node_outputs.at(node.id),
                                            part_attr, num_partitions);
      std::vector<Slice>& slices = slice_map[node.id];
      slices.resize(static_cast<size_t>(num_partitions));
      for (int p = 0; p < num_partitions; ++p) {
        const size_t sp = static_cast<size_t>(p);
        result.partition_rows[sp] += parts.parts[sp].num_rows();
        std::vector<std::vector<int64_t>> seq;
        seq.reserve(parts.row_index[sp].size());
        for (int64_t orig : parts.row_index[sp]) seq.push_back({orig});
        slices[sp] = Slice{std::move(parts.parts[sp]), std::move(seq)};
      }
    }
    {
      int64_t max_rows = 0;
      int64_t total_rows = 0;
      for (int64_t rows : result.partition_rows) {
        max_rows = std::max(max_rows, rows);
        total_rows += rows;
      }
      result.partition_skew =
          total_rows > 0 ? static_cast<double>(max_rows) * num_partitions /
                               static_cast<double>(total_rows)
                         : 0.0;
    }
    for (const WorkflowNode* node : chain) {
      slice_map[node->id].resize(static_cast<size_t>(num_partitions));
      if (node->kind == OpKind::kJoin) {
        reject_map[node->id].resize(static_cast<size_t>(num_partitions));
        if (cls(node->inputs[1]).mode == Mode::kPartitioned) {
          rreject_map[node->id].resize(static_cast<size_t>(num_partitions));
        }
      }
    }

    // ---- partition phase: chains on the worker pool ----------------------
    std::optional<ThreadPool> local_pool;
    if (pool == nullptr) {
      local_pool.emplace(threads);
      pool = &*local_pool;
    }
    const Status pf = pool->ParallelFor(num_partitions, [&](int p) -> Status {
      const size_t sp = static_cast<size_t>(p);
      PartitionOutcome& outcome = outcomes[sp];
      obs::ScopedSpan part_span("parallel.partition");
      if (part_span.active()) {
        part_span.Arg("partition", static_cast<int64_t>(p));
      }
      const std::string part_name = std::to_string(p);
      for (const WorkflowNode* nodep : chain) {
        const WorkflowNode& node = *nodep;
        const Schema& out_schema = wf_->output_schema(node.id);
        auto part_input = [&](int i) -> const Slice& {
          return slice_map.at(node.inputs[static_cast<size_t>(i)])[sp];
        };
        obs::ScopedSpan op_span(OpKindName(node.kind));
        int64_t start_ns = 0;
        if (profiling) start_ns = obs::ProfileNowNs();
        Slice out;
        Slice rejects;
        Slice rrejects;
        switch (node.kind) {
          case OpKind::kFilter:
            out = ApplyFilterSlice(node, out_schema, part_input(0));
            break;
          case OpKind::kProject:
            out = ApplyProjectSlice(node, out_schema, part_input(0));
            break;
          case OpKind::kTransform:
            out = ApplyTransformSlice(node, out_schema, part_input(0));
            break;
          case OpKind::kMaterialize:
          case OpKind::kSink:
            out = CopySlice(out_schema, part_input(0));
            break;
          case OpKind::kJoin: {
            const Slice& left = part_input(0);
            rejects = Slice{Table{left.table.schema()}, {}};
            const bool copart =
                cls(node.inputs[1]).mode == Mode::kPartitioned;
            if (copart) {
              const Slice& right = part_input(1);
              rrejects = Slice{Table{right.table.schema()}, {}};
              out = ApplyJoinSlice(node, out_schema, left, right.table,
                                   &right.seq, &rejects, &rrejects);
            } else {
              // Broadcast build side: the full pre-phase table. Right-side
              // rejects need every partition's keys; the merge barrier
              // computes them from the gathered probe input.
              const Table& right = result.node_outputs.at(node.inputs[1]);
              out = ApplyJoinSlice(node, out_schema, left, right, nullptr,
                                   &rejects, nullptr);
            }
            break;
          }
          case OpKind::kSource:
          case OpKind::kAggregate:
            ETLOPT_CHECK_MSG(false, "node kind cannot run partitioned");
            break;
        }
        if (profiling) {
          outcome.self_ns[node.id] = obs::ProfileNowNs() - start_ns;
        }
        if (op_span.active()) {
          op_span.Arg("node", static_cast<int64_t>(node.id));
          op_span.Arg("partition", static_cast<int64_t>(p));
          op_span.Arg("rows_out", out.table.num_rows());
        }
        // Partition-scoped crash faults mirror the serial crash point:
        // after the operator ran, before its slice is published — the
        // partition's salvage surface is its completed prefix.
        if (inj != nullptr) {
          int64_t slice_rows_in = 0;
          for (NodeId in : node.inputs) {
            const auto it = slice_map.find(in);
            if (it != slice_map.end()) {
              slice_rows_in += it->second[sp].table.num_rows();
            }
          }
          if (inj->OnPartition(part_name, std::max<int64_t>(
                                              slice_rows_in, 1)) ==
              fault::Kind::kCrash) {
            outcome.completed = false;
            outcome.failed_node = node.id;
            return Status::OK();
          }
        }
        slice_map.at(node.id)[sp] = std::move(out);
        if (node.kind == OpKind::kJoin) {
          reject_map.at(node.id)[sp] = std::move(rejects);
          if (cls(node.inputs[1]).mode == Mode::kPartitioned) {
            rreject_map.at(node.id)[sp] = std::move(rrejects);
          }
        }
      }
      return Status::OK();
    });
    ETLOPT_RETURN_IF_ERROR(pf);
  }

  // Earliest partition failure (by chain position, then partition index):
  // the run's abort point.
  bool partition_crashed = false;
  NodeId crash_node = kInvalidNode;
  int crash_partition = -1;
  for (int p = 0; p < num_partitions; ++p) {
    const PartitionOutcome& o = outcomes[static_cast<size_t>(p)];
    if (o.completed) {
      ++result.partitions_completed;
    } else if (!partition_crashed || o.failed_node < crash_node) {
      partition_crashed = true;
      crash_node = o.failed_node;
      crash_partition = p;
    }
  }
  if (result.aborted()) result.partitions_completed = 0;

  // ---- merge barrier + post phase, interleaved in plan order -------------
  if (!result.aborted()) {
    for (const WorkflowNode& node : wf_->nodes()) {
      const NodeClass& c = cls(node.id);
      if (c.mode == Mode::kPre ||
          (c.mode == Mode::kPartitioned && node.kind == OpKind::kSource)) {
        continue;
      }
      if (partition_crashed && node.id >= crash_node && !result.aborted()) {
        AbortRun(ctx, AbortKind::kCrash,
                 "injected crash fault at partition " +
                     std::to_string(crash_partition) + " (" +
                     OpFaultName(wf_->node(crash_node)) + ")",
                 wf_->node(crash_node));
      }
      if (result.aborted() && !partition_crashed) {
        // An operator-scoped abort (injected crash or guard monitor, both
        // fired from FinishNodeStep on a gathered output) deliberately
        // leaves the failed node unpublished, so downstream nodes have no
        // merge surface: the salvage stops at the completed prefix.
        continue;
      }
      if (c.mode == Mode::kPost) {
        if (result.aborted()) continue;
        ETLOPT_RETURN_IF_ERROR(ExecuteNodeStep(ctx, node));
        continue;
      }
      // Partitioned node: gather its slices back into the serial row order.
      const int64_t merge_start = obs::ProfileNowNs();
      Table gathered =
          MergeSlicesBySeq(wf_->output_schema(node.id), slice_map.at(node.id));
      Table rejects;
      Table rrejects;
      if (node.kind == OpKind::kJoin) {
        rejects = MergeSlicesBySeq(wf_->output_schema(node.inputs[0]),
                                   reject_map.at(node.id));
        const auto rr = rreject_map.find(node.id);
        if (rr != rreject_map.end()) {
          rrejects = MergeSlicesBySeq(wf_->output_schema(node.inputs[1]),
                                      rr->second);
        } else {
          // Broadcast build side: its rejects are global, not
          // partition-local — the serial scan over the gathered probe side.
          const Table& left = result.node_outputs.at(node.inputs[0]);
          const Table& right = result.node_outputs.at(node.inputs[1]);
          const int lkey = left.schema().IndexOf(node.join.attr);
          const int rkey = right.schema().IndexOf(node.join.attr);
          if (VectorizedKernels()) {
            const JoinHashTable left_keys(left.column_data(lkey),
                                          left.num_rows());
            const Value* rvals = right.column_data(rkey);
            SelVector rr;
            for (int64_t r = 0; r < right.num_rows(); ++r) {
              if (!left_keys.Contains(rvals[r])) rr.push_back(r);
            }
            rrejects = Table::Gather(right, rr);
          } else {
            std::unordered_map<Value, bool> left_keys;
            for (int64_t l = 0; l < left.num_rows(); ++l) {
              left_keys.emplace(left.at(l, lkey), true);
            }
            rrejects = Table{right.schema()};
            for (int64_t r = 0; r < right.num_rows(); ++r) {
              if (left_keys.find(right.at(r, rkey)) == left_keys.end()) {
                rrejects.AppendRowFrom(right, r);
              }
            }
          }
        }
      }
      result.merge_ns += obs::ProfileNowNs() - merge_start;
      if (!result.aborted()) {
        if (node.kind == OpKind::kJoin) {
          result.join_rejects[node.id] = std::move(rejects);
          result.join_rejects_right[node.id] = std::move(rrejects);
        }
        if (node.kind == OpKind::kMaterialize ||
            node.kind == OpKind::kSink) {
          result.targets[node.target_name] = gathered;
        }
        AccountRowsProcessed(node, gathered, &result);
        int64_t self_ns = 0;
        for (const PartitionOutcome& o : outcomes) {
          const auto it = o.self_ns.find(node.id);
          if (it != o.self_ns.end()) self_ns += it->second;
        }
        FinishNodeStep(ctx, node, std::move(gathered), self_ns);
      } else if (partition_crashed) {
        // Salvage: publish what the completed partitions produced — the
        // partition-granular analog of the serial completed-prefix rule.
        result.node_outputs[node.id] = std::move(gathered);
        if (node.kind == OpKind::kJoin) {
          result.join_rejects[node.id] = std::move(rejects);
          result.join_rejects_right[node.id] = std::move(rrejects);
        }
        ++result.nodes_partial;
      }
    }
  }

  if (result.aborted() && exec_span.active()) {
    exec_span.Arg("abort", AbortKindName(result.abort_kind));
    exec_span.Arg("nodes_completed",
                  static_cast<int64_t>(result.nodes_completed));
  }
  ETLOPT_COUNTER_ADD("etlopt.engine.executions", 1);
  ETLOPT_COUNTER_ADD("etlopt.engine.rows_processed", result.rows_processed);
  ETLOPT_COUNTER_ADD("etlopt.engine.bytes_processed", result.bytes_processed);
  ETLOPT_COUNTER_ADD("etlopt.parallel.merge_ns", result.merge_ns);
  ETLOPT_GAUGE_SET("etlopt.parallel.workers", result.num_workers);
  ETLOPT_GAUGE_SET("etlopt.parallel.partitions", result.partitions_total);
  ETLOPT_GAUGE_SET("etlopt.parallel.skew", result.partition_skew);

  // Hand the slices to the caller (the per-partition tap surface).
  for (auto& [id, slices] : slice_map) {
    std::vector<Table>& tables = pres.slices[id];
    tables.reserve(slices.size());
    for (Slice& s : slices) tables.push_back(std::move(s.table));
  }
  return pres;
}

}  // namespace parallel
}  // namespace etlopt
