#ifndef ETLOPT_STATS_STAT_IO_H_
#define ETLOPT_STATS_STAT_IO_H_

#include <string>

#include "stats/stat_store.h"

namespace etlopt {

// Persistence for learned statistics. In the paper's deployment the
// statistics observed in run N drive the optimization of run N+1, which may
// be hours or days later in a different process — so a real engine must
// write the collected StatStore somewhere durable. This is a line-oriented
// text codec (same spirit as the workflow format):
//
//   stat card rels=5 stage=-1 value=19739
//   stat distinct rels=1 stage=0 attrs=3 value=42
//   stat hist rels=3 stage=-1 attrs=2 buckets=2
//   bucket 7 = 13
//   bucket 9 = 5
//   stat rejcard rels=4 left=1 k=1 value=17
//   stat distinct rels=2 stage=-1 attrs=4 value=9984 mode=sketch err=0.0163
//
// Masks are decimal; histogram bucket keys list one value per attribute in
// increasing AttrId order. Sketch-collected values append their collection
// mode and relative-error parameter ("mode=sketch err=<e>") so cross-run
// consumers (ledger, drift detection) never mix precisions silently; exact
// values omit the suffix and the pre-sketch format parses unchanged.
std::string WriteStatStoreText(const StatStore& store);

Result<StatStore> ParseStatStoreText(const std::string& text);

// Standalone StatKey codec using the same field syntax as the stat lines
// above (e.g. "card rels=5 stage=-1", "rejhist rels=4 stage=-1 attrs=2
// left=1 k=1"). Used wherever a bare key identifies a statistic across
// process boundaries — the run ledger, drift reports, explain output.
std::string WriteStatKeySpec(const StatKey& key);
Result<StatKey> ParseStatKeySpec(const std::string& spec);

Status SaveStatStore(const StatStore& store, const std::string& path);
Result<StatStore> LoadStatStore(const std::string& path);

}  // namespace etlopt

#endif  // ETLOPT_STATS_STAT_IO_H_
