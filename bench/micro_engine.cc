// Micro-benchmarks for the execution engine: hash join, workflow execution,
// and instrumented observation.

#include <benchmark/benchmark.h>

#include "core/pipeline.h"
#include "datagen/workload_suite.h"

namespace etlopt {
namespace {

void BM_HashJoin(benchmark::State& state) {
  const int64_t rows = state.range(0);
  AttrCatalog catalog;
  const AttrId k = catalog.Register("k", 1000);
  const AttrId x = catalog.Register("x", 100);
  Rng rng(9);
  Table left{Schema({k, x})};
  for (int64_t i = 0; i < rows; ++i) {
    left.AddRow({rng.NextInRange(1, 1000), rng.NextInRange(1, 100)});
  }
  Table right{Schema({k})};
  for (int64_t i = 0; i < rows / 4; ++i) {
    right.AddRow({rng.NextInRange(1, 1000)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashJoin(left, right, k, nullptr).num_rows());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_HashJoin)->Arg(10000)->Arg(100000);

void BM_ExecuteWorkflow(benchmark::State& state) {
  const WorkloadSpec spec = BuildWorkload(static_cast<int>(state.range(0)));
  const SourceMap sources = GenerateSources(spec, 3, 0.05);
  Executor executor(&spec.workflow);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        executor.Execute(sources).value().rows_processed);
  }
}
BENCHMARK(BM_ExecuteWorkflow)->Arg(3)->Arg(5)->Arg(12)
    ->Unit(benchmark::kMillisecond);

void BM_FullPipelineCycle(benchmark::State& state) {
  const WorkloadSpec spec = BuildWorkload(static_cast<int>(state.range(0)));
  const SourceMap sources = GenerateSources(spec, 3, 0.02);
  Pipeline pipeline;
  for (auto _ : state) {
    const Result<CycleOutcome> cycle =
        pipeline.RunCycle(spec.workflow, sources);
    benchmark::DoNotOptimize(cycle.ok());
  }
}
BENCHMARK(BM_FullPipelineCycle)->Arg(3)->Arg(9)->Arg(22)
    ->Unit(benchmark::kMillisecond);

void BM_ObserveStatistics(benchmark::State& state) {
  const WorkloadSpec spec = BuildWorkload(3);
  const SourceMap sources = GenerateSources(spec, 3, 0.05);
  Pipeline pipeline;
  const auto analysis = pipeline.Analyze(spec.workflow).value();
  Executor executor(analysis->workflow.get());
  const ExecutionResult exec = executor.Execute(sources).value();
  const BlockAnalysis& ba = *analysis->blocks[0];
  const std::vector<StatKey> keys = ba.selection.ObservedKeys(ba.catalog);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ObserveStatistics(ba.ctx, exec, keys).value().size());
  }
}
BENCHMARK(BM_ObserveStatistics)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace etlopt

BENCHMARK_MAIN();
