file(REMOVE_RECURSE
  "CMakeFiles/physical_join_test.dir/physical_join_test.cc.o"
  "CMakeFiles/physical_join_test.dir/physical_join_test.cc.o.d"
  "physical_join_test"
  "physical_join_test.pdb"
  "physical_join_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/physical_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
