#include "stats/approx_histogram.h"

#include <algorithm>

namespace etlopt {

ApproxHistogram::ApproxHistogram(AttrId attr, int64_t domain_size,
                                 int64_t bucket_width)
    : attr_(attr), domain_(domain_size), width_(bucket_width) {
  ETLOPT_CHECK(domain_size >= 1 && bucket_width >= 1);
  const int64_t n = (domain_size + bucket_width - 1) / bucket_width;
  buckets_.assign(static_cast<size_t>(n), 0);
}

ApproxHistogram ApproxHistogram::FromTable(const Table& table, AttrId attr,
                                           int64_t domain_size,
                                           int64_t bucket_width) {
  ApproxHistogram h(attr, domain_size, bucket_width);
  const int col = table.schema().IndexOf(attr);
  ETLOPT_CHECK_MSG(col >= 0, "attribute not in table schema");
  const Value* data = table.column_data(col);
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    h.Add(data[r]);
  }
  return h;
}

void ApproxHistogram::Add(Value v, int64_t count) {
  ETLOPT_CHECK_MSG(v >= 1 && v <= domain_, "value outside attribute domain");
  buckets_[static_cast<size_t>((v - 1) / width_)] += count;
  total_ += count;
}

int64_t ApproxHistogram::ValuesInBucket(int64_t bucket) const {
  const int64_t lo = 1 + bucket * width_;
  const int64_t hi = std::min(domain_, (bucket + 1) * width_);
  return hi - lo + 1;
}

double ApproxHistogram::EstimateJoinCardinality(const ApproxHistogram& a,
                                                const ApproxHistogram& b) {
  ETLOPT_CHECK_MSG(a.attr_ == b.attr_ && a.domain_ == b.domain_ &&
                       a.width_ == b.width_,
                   "join estimate requires aligned histograms");
  double total = 0.0;
  for (int64_t i = 0; i < a.num_buckets(); ++i) {
    const int64_t fa = a.buckets_[static_cast<size_t>(i)];
    const int64_t fb = b.buckets_[static_cast<size_t>(i)];
    if (fa == 0 || fb == 0) continue;
    total += static_cast<double>(fa) * static_cast<double>(fb) /
             static_cast<double>(a.ValuesInBucket(i));
  }
  return total;
}

double ApproxHistogram::EstimateSelectCount(const Predicate& pred) const {
  ETLOPT_CHECK_MSG(pred.attr == attr_, "predicate attribute mismatch");
  double total = 0.0;
  for (int64_t i = 0; i < num_buckets(); ++i) {
    const int64_t count = buckets_[static_cast<size_t>(i)];
    if (count == 0) continue;
    const int64_t lo = 1 + i * width_;
    const int64_t hi = std::min(domain_, (i + 1) * width_);
    // Number of integer values in [lo, hi] satisfying the predicate.
    int64_t satisfying = 0;
    switch (pred.op) {
      case CompareOp::kEq:
        satisfying = (pred.constant >= lo && pred.constant <= hi) ? 1 : 0;
        break;
      case CompareOp::kNe:
        satisfying = (hi - lo + 1) -
                     ((pred.constant >= lo && pred.constant <= hi) ? 1 : 0);
        break;
      case CompareOp::kLt:
        satisfying = std::clamp<int64_t>(pred.constant - lo, 0, hi - lo + 1);
        break;
      case CompareOp::kLe:
        satisfying =
            std::clamp<int64_t>(pred.constant - lo + 1, 0, hi - lo + 1);
        break;
      case CompareOp::kGt:
        satisfying = std::clamp<int64_t>(hi - pred.constant, 0, hi - lo + 1);
        break;
      case CompareOp::kGe:
        satisfying =
            std::clamp<int64_t>(hi - pred.constant + 1, 0, hi - lo + 1);
        break;
    }
    total += static_cast<double>(count) * static_cast<double>(satisfying) /
             static_cast<double>(hi - lo + 1);
  }
  return total;
}

}  // namespace etlopt
