#ifndef ETLOPT_PLANSPACE_PLAN_SPACE_H_
#define ETLOPT_PLANSPACE_PLAN_SPACE_H_

#include <unordered_map>
#include <vector>

#include "planspace/block.h"
#include "util/status.h"

namespace etlopt {

// One alternative plan for a join SE (Definition 1): evaluate `left ⋈ right`
// on `attr`. `fk_dim_side` is the relation index of the dimension side when
// the crossing edge is a declared foreign-key lookup and that dimension is
// alone on its side (enabling the FK cardinality shortcut), else -1.
struct PlanAlt {
  RelMask left = 0;
  RelMask right = 0;
  AttrId attr = kInvalidAttr;
  int edge = -1;          // index into JoinGraph::edges()
  int fk_dim_side = -1;
};

struct PlanSpaceOptions {
  // Restrict to left-deep trees (right side a single relation). The default
  // explores bushy plans like a DP optimizer would.
  bool left_deep_only = false;
};

// The set E of all sub-expressions over all plans the optimizer would
// generate for one block, together with the plan set P_e for each SE
// (Section 3.2.2 / Section 4). Cross products are never generated: SEs are
// connected subsets of the join graph, and since the graph is a tree each
// SE split corresponds to removing one subtree edge.
class PlanSpace {
 public:
  static Result<PlanSpace> Build(const BlockContext& ctx,
                                 PlanSpaceOptions options = {});

  // All SEs, singletons first, full SE last (sorted by popcount then value).
  const std::vector<RelMask>& subexpressions() const { return ses_; }

  bool IsSe(RelMask rels) const {
    return plans_.find(rels) != plans_.end();
  }

  // Plans for a (multi-relation) SE; empty for singletons.
  const std::vector<PlanAlt>& plans(RelMask rels) const;

  int num_ses() const { return static_cast<int>(ses_.size()); }
  int num_plans() const { return num_plans_; }

 private:
  std::vector<RelMask> ses_;
  std::unordered_map<RelMask, std::vector<PlanAlt>> plans_;
  int num_plans_ = 0;
};

}  // namespace etlopt

#endif  // ETLOPT_PLANSPACE_PLAN_SPACE_H_
