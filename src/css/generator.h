#ifndef ETLOPT_CSS_GENERATOR_H_
#define ETLOPT_CSS_GENERATOR_H_

#include "css/rules.h"

namespace etlopt {

// Algorithm 1 of the paper: starting from the cardinality of every SE in E,
// repeatedly applies the rules to the statistics still to be computed,
// recording every generated CSS; finishes with the identity-rule pass.
// The returned catalog is the statistics universe S plus all CSSs.
CssCatalog GenerateCss(const BlockContext& ctx, const PlanSpace& plan_space,
                       const CssGenOptions& options = {});

}  // namespace etlopt

#endif  // ETLOPT_CSS_GENERATOR_H_
