#include "lp/ilp.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/common.h"
#include "util/timer.h"

namespace etlopt {
namespace {

struct Node {
  double bound;  // LP relaxation objective (lower bound for minimization)
  std::vector<std::pair<int, std::pair<double, double>>> bound_changes;

  bool operator<(const Node& other) const {
    return bound > other.bound;  // min-heap by bound
  }
};

// Returns the variable (from integer_vars) whose value is farthest from
// integral, preferring values near 0.5; -1 when all are integral.
int PickBranchVariable(const std::vector<double>& values,
                       const std::vector<int>& integer_vars, double tol) {
  int best = -1;
  double best_score = -1.0;
  for (int var : integer_vars) {
    const double v = values[static_cast<size_t>(var)];
    const double frac = std::fabs(v - std::round(v));
    if (frac <= tol) continue;
    const double score = 0.5 - std::fabs(frac - 0.5);  // max at frac == 0.5
    if (score > best_score) {
      best_score = score;
      best = var;
    }
  }
  return best;
}

}  // namespace

IlpSolution SolveIlp(const LinearProgram& lp,
                     const std::vector<int>& integer_vars,
                     const IlpOptions& options) {
  Timer timer;
  IlpSolution best;
  best.status = LpStatus::kInfeasible;
  double incumbent_obj = LinearProgram::kInfinity;
  if (!options.initial_incumbent.empty()) {
    ETLOPT_CHECK(static_cast<int>(options.initial_incumbent.size()) ==
                 lp.num_variables());
    double obj = 0.0;
    for (int i = 0; i < lp.num_variables(); ++i) {
      obj += lp.costs()[static_cast<size_t>(i)] *
             options.initial_incumbent[static_cast<size_t>(i)];
    }
    incumbent_obj = obj;
    best.status = LpStatus::kOptimal;
    best.objective = obj;
    best.values = options.initial_incumbent;
  }

  // Working program: original constraints plus any no-good cuts added when
  // the incumbent filter rejects a candidate. Adding cuts never invalidates
  // node bounds (it can only raise objectives), so open nodes stay usable.
  LinearProgram work = lp;

  std::priority_queue<Node> open;
  {
    Node root;
    root.bound = -LinearProgram::kInfinity;
    open.push(std::move(root));
  }

  int explored = 0;
  bool truncated = false;
  while (!open.empty()) {
    if (explored >= options.max_nodes ||
        timer.ElapsedSeconds() > options.time_limit_seconds) {
      truncated = true;
      break;
    }
    Node node = open.top();
    open.pop();
    if (node.bound >= incumbent_obj - 1e-9) continue;
    ++explored;

    // Apply this node's bound changes on top of the original bounds.
    for (int v = 0; v < lp.num_variables(); ++v) {
      work.SetBounds(v, lp.lower_bounds()[static_cast<size_t>(v)],
                     lp.upper_bounds()[static_cast<size_t>(v)]);
    }
    for (const auto& [var, bounds] : node.bound_changes) {
      work.SetBounds(var, bounds.first, bounds.second);
    }

    const LpSolution relax = SolveLp(work, options.simplex);
    if (relax.status != LpStatus::kOptimal) continue;  // prune (or numeric)
    if (relax.objective >= incumbent_obj - 1e-9) continue;

    const int var = PickBranchVariable(relax.values, integer_vars,
                                       options.integrality_tolerance);
    if (var < 0) {
      // Integral candidate.
      if (!options.incumbent_filter ||
          options.incumbent_filter(relax.values)) {
        incumbent_obj = relax.objective;
        best.status = LpStatus::kOptimal;
        best.objective = relax.objective;
        best.values = relax.values;
        continue;
      }
      // Semantically rejected: forbid this 0/1 assignment and all of its
      // subsets with a no-good cut (valid because feasibility is monotone in
      // the observed set). Then re-expand this node under the cut.
      LpConstraint cut;
      cut.sense = ConstraintSense::kGreaterEqual;
      cut.rhs = 1.0;
      for (int iv : integer_vars) {
        if (relax.values[static_cast<size_t>(iv)] < 0.5) {
          cut.terms.push_back({iv, 1.0});
        }
      }
      if (cut.terms.empty()) continue;  // Everything observed yet infeasible.
      work.AddConstraint(cut);
      // lp's constraints are fixed, so remember the cut for future node
      // rebuilds by re-adding to `work` — `work` persists across nodes and
      // only its *bounds* are reset above, so the cut stays in force.
      Node retry = node;
      retry.bound = relax.objective;
      open.push(std::move(retry));
      continue;
    }

    // Branch on the fractional variable: floor / ceil children.
    const double v = relax.values[static_cast<size_t>(var)];
    const double lo = lp.lower_bounds()[static_cast<size_t>(var)];
    const double hi = lp.upper_bounds()[static_cast<size_t>(var)];

    Node down = node;
    down.bound = relax.objective;
    down.bound_changes.push_back({var, {lo, std::floor(v)}});
    open.push(std::move(down));

    Node up = node;
    up.bound = relax.objective;
    up.bound_changes.push_back({var, {std::ceil(v), hi}});
    open.push(std::move(up));
  }

  best.explored_nodes = explored;
  best.proven_optimal = !truncated && best.status == LpStatus::kOptimal;
  return best;
}

}  // namespace etlopt
