#include "sketch/kmv.h"

#include <cmath>

namespace etlopt {
namespace sketch {

Kmv::Kmv(int k) : k_(k) {
  ETLOPT_CHECK_MSG(k >= 4, "KMV k must be >= 4");
}

void Kmv::AddHashWithKey(uint64_t hash, std::vector<Value> key) {
  if (static_cast<int>(entries_.size()) >= k_) {
    // Only hashes below the current k-th minimum can enter.
    const uint64_t kth = entries_.rbegin()->first;
    if (hash >= kth) {
      // A rejected hash that is not already retained is a distinct value
      // the sketch will never count exactly — from here on Estimate must
      // extrapolate. (Once saturated the lookup is skipped: the flag is
      // sticky.)
      if (!saturated_ && hash != kth && entries_.count(hash) == 0) {
        saturated_ = true;
      }
      return;
    }
    if (entries_.emplace(hash, std::move(key)).second) {
      entries_.erase(std::prev(entries_.end()));
      saturated_ = true;
    }
    return;
  }
  entries_.emplace(hash, std::move(key));
}

bool Kmv::WouldAdmit(uint64_t hash) const {
  if (static_cast<int>(entries_.size()) < k_) {
    return entries_.count(hash) == 0;
  }
  return hash < entries_.rbegin()->first && entries_.count(hash) == 0;
}

int64_t Kmv::Estimate() const {
  const size_t m = entries_.size();
  if (!saturated_ || m < 2) {
    return static_cast<int64_t>(m);  // exact: nothing was ever dropped
  }
  // (m-1) / h_(m) with the largest retained hash scaled to (0,1). m == k in
  // the streaming case; smaller m can appear after deserialization.
  const uint64_t mth = entries_.rbegin()->first;
  const double h = (static_cast<double>(mth) + 1.0) / std::ldexp(1.0, 64);
  if (h <= 0.0) return static_cast<int64_t>(m);
  return static_cast<int64_t>(static_cast<double>(m - 1) / h + 0.5);
}

double Kmv::StandardError() const {
  if (!saturated_) return 0.0;
  return 1.0 / std::sqrt(static_cast<double>(k_ - 2));
}

Status Kmv::Merge(const Kmv& other) {
  if (other.k_ != k_) {
    return Status::InvalidArgument("KMV k mismatch in merge");
  }
  saturated_ = saturated_ || other.saturated_;
  for (const auto& [hash, key] : other.entries_) {
    AddHashWithKey(hash, key);
  }
  // Union may saturate even when neither input had: truncation inside
  // AddHashWithKey already flagged it in that case.
  return Status::OK();
}

Result<double> Kmv::EstimateIntersection(const Kmv& a, const Kmv& b) {
  if (a.k_ != b.k_) {
    return Status::InvalidArgument("KMV k mismatch in intersection");
  }
  Kmv u = a;
  ETLOPT_RETURN_IF_ERROR(u.Merge(b));
  if (u.entries_.empty()) return 0.0;
  int shared = 0;
  for (const auto& [hash, key] : u.entries_) {
    (void)key;
    if (a.entries_.count(hash) != 0 && b.entries_.count(hash) != 0) {
      ++shared;
    }
  }
  const double jaccard =
      static_cast<double>(shared) / static_cast<double>(u.entries_.size());
  return jaccard * static_cast<double>(u.Estimate());
}

int64_t Kmv::MemoryBytes() const {
  int64_t bytes = static_cast<int64_t>(sizeof(Kmv));
  for (const auto& [hash, key] : entries_) {
    (void)hash;
    // Node overhead (red-black node + hash) plus the payload values.
    bytes += 48 + static_cast<int64_t>(key.size() * sizeof(Value));
  }
  return bytes;
}

Json Kmv::ToJson() const {
  Json j = Json::Object();
  j.Set("type", Json::Str("kmv"));
  j.Set("k", Json::Int(k_));
  j.Set("saturated", Json::Bool(saturated_));
  Json items = Json::Array();
  for (const auto& [hash, key] : entries_) {
    Json e = Json::Object();
    // Hashes exceed int64 range half the time; split into two 32-bit halves
    // to survive the integer JSON representation exactly.
    e.Set("hi", Json::Int(static_cast<int64_t>(hash >> 32)));
    e.Set("lo", Json::Int(static_cast<int64_t>(hash & 0xffffffffULL)));
    Json vals = Json::Array();
    for (Value v : key) vals.push_back(Json::Int(v));
    e.Set("key", std::move(vals));
    items.push_back(std::move(e));
  }
  j.Set("entries", std::move(items));
  return j;
}

Result<Kmv> Kmv::FromJson(const Json& j) {
  if (!j.is_object() || j.GetString("type") != "kmv") {
    return Status::InvalidArgument("not a KMV sketch document");
  }
  const int k = static_cast<int>(j.GetInt("k"));
  if (k < 4) return Status::InvalidArgument("KMV k out of range");
  Kmv kmv(k);
  const Json* sat = j.Find("saturated");
  kmv.saturated_ = sat != nullptr && sat->is_bool() && sat->bool_value();
  const Json* items = j.Find("entries");
  if (items == nullptr || !items->is_array()) {
    return Status::InvalidArgument("KMV entries malformed");
  }
  for (const Json& e : items->array()) {
    if (!e.is_object()) {
      return Status::InvalidArgument("KMV entry malformed");
    }
    const uint64_t hash =
        (static_cast<uint64_t>(e.GetInt("hi")) << 32) |
        (static_cast<uint64_t>(e.GetInt("lo")) & 0xffffffffULL);
    std::vector<Value> key;
    if (const Json* vals = e.Find("key");
        vals != nullptr && vals->is_array()) {
      for (const Json& v : vals->array()) key.push_back(v.int_value());
    }
    kmv.entries_.emplace(hash, std::move(key));
  }
  if (static_cast<int>(kmv.entries_.size()) > k) {
    return Status::InvalidArgument("KMV holds more than k entries");
  }
  return kmv;
}

}  // namespace sketch
}  // namespace etlopt
