file(REMOVE_RECURSE
  "CMakeFiles/micro_histogram.dir/micro_histogram.cc.o"
  "CMakeFiles/micro_histogram.dir/micro_histogram.cc.o.d"
  "micro_histogram"
  "micro_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
