#include "obs/accuracy.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/metrics.h"

namespace etlopt {
namespace obs {

double QError(double estimated, double actual) {
  const double e = std::max(estimated, 1.0);
  const double a = std::max(actual, 1.0);
  return std::max(e / a, a / e);
}

AccuracyTracker& AccuracyTracker::Global() {
  static AccuracyTracker* tracker = new AccuracyTracker();
  return *tracker;
}

void AccuracyTracker::Record(const std::string& op_type, int join_depth,
                             double estimated, double actual) {
  if (!ObsEnabled()) return;
  const double q = QError(estimated, actual);
  {
    std::lock_guard<std::mutex> lock(mu_);
    samples_[{op_type, join_depth}].push_back(q);
  }
  ETLOPT_COUNTER_ADD("etlopt.accuracy.samples", 1);
  // Scaled x1000 so the log-bucketed histogram resolves the [1, 2) range
  // where most q-errors land.
  ETLOPT_HIST_RECORD("etlopt.accuracy.qerror_x1000",
                     static_cast<int64_t>(std::llround(q * 1000.0)));
}

void AccuracyTracker::RecordSe(RelMask se, double estimated, double actual) {
  const int rels = PopCount(se);
  Record(rels > 1 ? "join" : "chain", rels > 1 ? rels - 1 : 0, estimated,
         actual);
}

void AccuracyTracker::RecordCardMap(
    const std::unordered_map<RelMask, int64_t>& estimated,
    const std::unordered_map<RelMask, int64_t>& truth) {
  for (const auto& [se, est] : estimated) {
    const auto it = truth.find(se);
    if (it == truth.end()) continue;
    RecordSe(se, static_cast<double>(est), static_cast<double>(it->second));
  }
}

bool AccuracyTracker::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_.empty();
}

int64_t AccuracyTracker::total_samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [key, values] : samples_) {
    total += static_cast<int64_t>(values.size());
  }
  return total;
}

namespace {

double Quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

QErrorSummary Summarize(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  QErrorSummary s;
  s.count = static_cast<int64_t>(values.size());
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = values.empty() ? 0.0 : sum / static_cast<double>(values.size());
  s.p50 = Quantile(values, 0.50);
  s.p90 = Quantile(values, 0.90);
  s.p95 = Quantile(values, 0.95);
  s.p99 = Quantile(values, 0.99);
  s.max = values.empty() ? 0.0 : values.back();
  return s;
}

}  // namespace

std::vector<std::pair<std::pair<std::string, int>, QErrorSummary>>
AccuracyTracker::Summaries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::pair<std::string, int>, QErrorSummary>> out;
  out.reserve(samples_.size());
  for (const auto& [key, values] : samples_) {
    out.emplace_back(key, Summarize(values));
  }
  return out;
}

std::string AccuracyTracker::FormatTable() const {
  const auto summaries = Summaries();
  std::ostringstream out;
  out << "estimator q-error by operator type and join depth:\n";
  if (summaries.empty()) {
    out << "  (no ground-truth samples recorded)\n";
    return out.str();
  }
  char line[160];
  std::snprintf(line, sizeof(line), "  %-8s %5s %7s %8s %8s %8s %8s %8s %8s\n",
                "op", "depth", "count", "mean", "p50", "p90", "p95", "p99",
                "max");
  out << line;
  auto all = std::vector<double>();
  for (const auto& [key, s] : summaries) {
    std::snprintf(line, sizeof(line),
                  "  %-8s %5d %7lld %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n",
                  key.first.c_str(), key.second,
                  static_cast<long long>(s.count), s.mean, s.p50, s.p90,
                  s.p95, s.p99, s.max);
    out << line;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, values] : samples_) {
      all.insert(all.end(), values.begin(), values.end());
    }
  }
  const QErrorSummary s = Summarize(std::move(all));
  std::snprintf(line, sizeof(line),
                "  %-8s %5s %7lld %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n",
                "all", "-", static_cast<long long>(s.count), s.mean, s.p50,
                s.p90, s.p95, s.p99, s.max);
  out << line;
  return out.str();
}

void AccuracyTracker::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  samples_.clear();
}

}  // namespace obs
}  // namespace etlopt
