#include "obs/explain.h"

#include <algorithm>
#include <sstream>

#include "obs/accuracy.h"
#include "stats/stat_io.h"
#include "util/bitmask.h"
#include "util/json.h"
#include "util/string_util.h"

namespace etlopt {
namespace obs {
namespace {

std::string SeLabel(RelMask se) {
  std::string out = "{";
  bool first = true;
  for (int idx : MaskToIndices(se)) {
    if (!first) out += ",";
    out += "R" + std::to_string(idx);
    first = false;
  }
  out += "}";
  return out;
}

std::string FormatRows(double v) {
  if (v < 0) return "?";
  std::ostringstream out;
  out.precision(0);
  out << std::fixed << v;
  return out.str();
}

}  // namespace

Result<PlanExplain> BuildPlanExplain(
    const std::vector<ExplainBlockInput>& blocks,
    const std::string& workflow_name, const std::string& fingerprint,
    const DriftReport* drift) {
  PlanExplain explain;
  explain.workflow = workflow_name;
  explain.fingerprint = fingerprint;

  for (const ExplainBlockInput& input : blocks) {
    ETLOPT_CHECK(input.ctx != nullptr && input.catalog != nullptr &&
                 input.stats != nullptr);
    Estimator estimator(input.ctx, input.catalog);
    ETLOPT_RETURN_IF_ERROR(estimator.DeriveAll(*input.stats));

    std::vector<RelMask> ses = input.ses;
    std::sort(ses.begin(), ses.end(), [](RelMask a, RelMask b) {
      const int pa = PopCount(a), pb = PopCount(b);
      return pa != pb ? pa < pb : a < b;
    });

    for (RelMask se : ses) {
      SeExplainEntry entry;
      entry.block = input.block;
      entry.se = se;
      entry.depth = PopCount(se) - 1;
      entry.source_run_id = input.source_run_id;

      const StatKey card_key = StatKey::Card(se);
      const Result<int64_t> est = estimator.Cardinality(se);
      if (est.ok()) {
        entry.estimated = static_cast<double>(*est);
        const StatProvenance* prov = estimator.FindProvenance(card_key);
        entry.rule = (prov == nullptr || prov->observed)
                         ? "observed"
                         : RuleName(prov->rule);
        entry.feeding = estimator.ObservedLeaves(card_key);
        // Sketch-backed estimates carry the propagated error bound so the
        // reader knows the estimate is approximate, and by how much.
        const StatValue* value = estimator.derived().Find(card_key);
        if (value != nullptr && value->is_approx()) {
          entry.rel_error = value->rel_error();
        }
      }
      if (input.actuals != nullptr) {
        const auto it = input.actuals->find(se);
        if (it != input.actuals->end()) {
          entry.actual = static_cast<double>(it->second);
        }
      }
      if (entry.estimated >= 0 && entry.actual >= 0) {
        entry.qerror = QError(entry.estimated, entry.actual);
      }
      if (drift != nullptr) {
        // An SE is drift-flagged when its own cardinality drifted or any
        // statistic feeding its estimate did.
        entry.drifted = drift->IsDrifted(input.block, card_key);
        for (const StatKey& leaf : entry.feeding) {
          entry.drifted = entry.drifted || drift->IsDrifted(input.block, leaf);
        }
      }
      explain.entries.push_back(std::move(entry));
    }
  }
  return explain;
}

std::string FormatPlanExplainText(const PlanExplain& explain,
                                  const AttrCatalog* catalog) {
  std::ostringstream out;
  out << "plan explain: workflow '" << explain.workflow << "' (fingerprint "
      << explain.fingerprint << ")\n";
  int last_block = -1;
  for (const SeExplainEntry& entry : explain.entries) {
    if (entry.block != last_block) {
      out << "block " << entry.block << ":\n";
      out << "  " << PadRight("sub-expression", 22) << PadLeft("est", 10)
          << PadLeft("actual", 10) << PadLeft("q-err", 8)
          << "  fed by\n";
      last_block = entry.block;
    }
    // Two-space tree indent per join depth.
    const std::string label =
        std::string(static_cast<size_t>(entry.depth) * 2, ' ') +
        SeLabel(entry.se);
    std::string qe = "-";
    if (entry.qerror >= 0) {
      std::ostringstream q;
      q.precision(2);
      q << std::fixed << entry.qerror;
      qe = q.str();
    }
    out << "  " << PadRight(label, 22) << PadLeft(FormatRows(entry.estimated), 10)
        << PadLeft(FormatRows(entry.actual), 10) << PadLeft(qe, 8) << "  ";
    if (entry.estimated < 0) {
      out << "(not derivable from stored statistics)";
    } else {
      out << entry.rule << "(";
      for (size_t i = 0; i < entry.feeding.size(); ++i) {
        if (i != 0) out << ", ";
        out << entry.feeding[i].ToString(catalog);
      }
      out << ")";
      if (!entry.source_run_id.empty()) out << " @" << entry.source_run_id;
    }
    if (entry.rel_error >= 0) {
      std::ostringstream e;
      e.precision(1);
      e << std::fixed << entry.rel_error * 100.0;
      out << "  [~±" << e.str() << "%]";
    }
    if (entry.drifted) out << "  [DRIFT]";
    out << "\n";
  }
  return out.str();
}

std::string PlanExplainJson(const PlanExplain& explain,
                            const AttrCatalog* catalog) {
  Json j = Json::Object();
  j.Set("workflow", Json::Str(explain.workflow));
  j.Set("fingerprint", Json::Str(explain.fingerprint));
  Json entries = Json::Array();
  for (const SeExplainEntry& entry : explain.entries) {
    Json je = Json::Object();
    je.Set("block", Json::Int(entry.block));
    je.Set("se", Json::Int(static_cast<int64_t>(entry.se)));
    je.Set("label", Json::Str(SeLabel(entry.se)));
    je.Set("depth", Json::Int(entry.depth));
    je.Set("estimated", Json::Double(entry.estimated));
    je.Set("actual", Json::Double(entry.actual));
    je.Set("qerror", Json::Double(entry.qerror));
    je.Set("drifted", Json::Bool(entry.drifted));
    je.Set("rel_error", Json::Double(entry.rel_error));
    je.Set("rule", Json::Str(entry.rule));
    je.Set("source_run_id", Json::Str(entry.source_run_id));
    Json feeding = Json::Array();
    for (const StatKey& leaf : entry.feeding) {
      Json jf = Json::Object();
      jf.Set("key", Json::Str(WriteStatKeySpec(leaf)));
      jf.Set("display", Json::Str(leaf.ToString(catalog)));
      jf.Set("run_id", Json::Str(entry.source_run_id));
      feeding.push_back(std::move(jf));
    }
    je.Set("feeding", std::move(feeding));
    entries.push_back(std::move(je));
  }
  j.Set("entries", std::move(entries));
  return j.Dump();
}

}  // namespace obs
}  // namespace etlopt
