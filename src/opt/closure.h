#ifndef ETLOPT_OPT_CLOSURE_H_
#define ETLOPT_OPT_CLOSURE_H_

#include <vector>

#include "css/css.h"

namespace etlopt {

// Monotone computability closure (Section 5.1): a statistic is computable
// when it is observed or some CSS of it has all members computable. Returns
// one flag per stat index. When `derivation` is non-null it receives, per
// stat, the index of the CSS that first fired for it (-1 when the stat is
// directly observed or not computable) — the estimator evaluates along this
// acyclic derivation.
std::vector<char> ComputeClosure(const CssCatalog& catalog,
                                 const std::vector<char>& observed,
                                 std::vector<int>* derivation = nullptr);

}  // namespace etlopt

#endif  // ETLOPT_OPT_CLOSURE_H_
