#ifndef ETLOPT_DATAGEN_WORKLOAD_SUITE_H_
#define ETLOPT_DATAGEN_WORKLOAD_SUITE_H_

#include <string>
#include <vector>

#include "datagen/table_gen.h"
#include "engine/executor.h"
#include "etl/workflow.h"

namespace etlopt {

// One benchmark workload: a designed workflow plus the generation specs of
// its source tables.
struct WorkloadSpec {
  std::string name;
  Workflow workflow;
  std::vector<TableSpec> tables;
};

// The 30 representative workflows of Section 7, motivated by (a draft of)
// TPC-DI: star/snowflake/chain joins from 1 to 8 inputs, filters,
// transformations (in-place, derived-attribute, black-box aggregate UDFs),
// group-bys, reject links, and materialized intermediates. Indexed 1..30 to
// match the paper's figures; anchors:
//   wf3  — union-division reduces memory by ~60x (Figure 11),
//   wf16 — ~70,000 memory units (Figure 11),
//   wf21 — 8-way join, minimum 41 executions for trivial-CSS-only coverage
//          (Figure 12),
//   wf23 — union-division CSS exists but is ~2x costlier and is not chosen,
//   wf30 — 6-way join, minimum 14 executions.
std::vector<WorkloadSpec> BuildSuite();

// Builds one workflow of the suite (index 1..30).
WorkloadSpec BuildWorkload(int index);

// Generates all source tables of a workload. `row_scale` shrinks the data
// for tests (1.0 = the paper-scale cardinalities).
SourceMap GenerateSources(const WorkloadSpec& spec, uint64_t seed,
                          double row_scale = 1.0);

// Summary of the generated tables' data characteristics (the Section 7
// table): cardinalities and unique values per attribute column.
struct DataCharacteristics {
  int64_t card_max = 0, card_min = 0;
  double card_mean = 0.0, card_median = 0.0;
  int64_t uv_max = 0, uv_min = 0;
  double uv_mean = 0.0, uv_median = 0.0;
  int num_tables = 0;
  int num_columns = 0;
};

DataCharacteristics SummarizeSuiteData(uint64_t seed, double row_scale = 1.0);

}  // namespace etlopt

#endif  // ETLOPT_DATAGEN_WORKLOAD_SUITE_H_
