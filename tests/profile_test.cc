// Tests for the per-operator profiler (obs/profile.h), the cost-model
// calibration loop (obs/calibrate.h), and the advisor's offline accuracy
// report (obs/run_report.h) — including the two-run end-to-end check that a
// calibration fit from run 1 strictly shrinks run 2's per-plan cost q-error.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "engine/executor.h"
#include "engine/parallel/parallel_executor.h"
#include "gtest/gtest.h"
#include "obs/accuracy.h"
#include "obs/calibrate.h"
#include "obs/ledger.h"
#include "obs/profile.h"
#include "obs/run_report.h"
#include "test_util.h"
#include "util/json.h"

namespace etlopt {
namespace {

std::string TempPath(const std::string& name) {
  // Pid-qualified so the sanitizer twin of this suite can run under the
  // same ctest invocation without clobbering this process's files.
  return testing::TempDir() + std::to_string(getpid()) + "_" + name;
}

// RAII profiler switch: every test that profiles restores the global
// disabled default on exit so no other test inherits the flag.
class ProfilerGuard {
 public:
  ProfilerGuard() { obs::SetProfilerEnabled(true); }
  ~ProfilerGuard() { obs::SetProfilerEnabled(false); }
};

// ---------------------------------------------------------------------------
// Profiler capture
// ---------------------------------------------------------------------------

TEST(ProfilerTest, DisabledByDefaultLeavesProfileEmpty) {
  ASSERT_FALSE(obs::ProfilerEnabled());
  const auto ex = testing_util::MakePaperExample();
  Executor executor(&ex.workflow);
  const auto result = executor.Execute(ex.sources);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->profile.empty());
}

TEST(ProfilerTest, CapturesEveryOperatorWithRowsAndBytes) {
  ProfilerGuard guard;
  const auto ex = testing_util::MakePaperExample();
  Executor executor(&ex.workflow);
  const auto result = executor.Execute(ex.sources);
  ASSERT_TRUE(result.ok());
  const obs::RunProfile& profile = result->profile;
  ASSERT_EQ(profile.ops.size(),
            static_cast<size_t>(ex.workflow.num_nodes()));

  int64_t bytes = 0;
  int joins = 0;
  for (const obs::OpProfile& op : profile.ops) {
    EXPECT_GE(op.self_ns, 0);
    EXPECT_GE(op.node, 0);
    EXPECT_FALSE(op.op.empty());
    EXPECT_FALSE(op.label.empty());
    bytes += op.bytes;
    if (op.op == "Join") {
      ++joins;
      EXPECT_GT(op.rows_in, 0);
      EXPECT_EQ(op.inputs.size(), 2u);
    }
    // The calibration row basis: rows_in for interior ops, rows_out for
    // sources, never below 1.
    EXPECT_GE(obs::RunProfile::Weight(op), 1);
  }
  EXPECT_EQ(joins, 2);
  EXPECT_EQ(bytes, result->bytes_processed);
  EXPECT_GE(profile.TotalSelfNs(), 0);
}

TEST(ProfilerTest, CumulativeTimeIsSelfPlusInputs) {
  ProfilerGuard guard;
  const auto ex = testing_util::MakePaperExample();
  Executor executor(&ex.workflow);
  const auto result = executor.Execute(ex.sources);
  ASSERT_TRUE(result.ok());
  const obs::RunProfile& profile = result->profile;
  const std::vector<int64_t> cum = obs::CumulativeNs(profile);
  ASSERT_EQ(cum.size(), profile.ops.size());
  for (size_t i = 0; i < profile.ops.size(); ++i) {
    // Inclusive time can never be below self time.
    EXPECT_GE(cum[i], profile.ops[i].self_ns);
    if (profile.ops[i].inputs.empty()) {
      EXPECT_EQ(cum[i], profile.ops[i].self_ns);
    }
  }
}

TEST(ProfilerTest, ParallelRunMergesWorkerTimesWithoutDoubleCounting) {
  ProfilerGuard guard;
  const auto ex = testing_util::MakePaperExample();
  const auto serial = Executor(&ex.workflow).Execute(ex.sources);
  ASSERT_TRUE(serial.ok());

  parallel::ParallelOptions opts;
  opts.num_threads = 4;
  const auto par =
      parallel::ParallelExecutor(&ex.workflow, opts).Execute(ex.sources);
  ASSERT_TRUE(par.ok());
  ASSERT_TRUE(par->used_parallel_path);
  const obs::RunProfile& profile = par->exec.profile;

  // Exactly one merged OpProfile per workflow node: a partitioned node's
  // per-worker self times are summed into a single op at the merge barrier,
  // never emitted once per worker.
  ASSERT_EQ(profile.ops.size(),
            static_cast<size_t>(ex.workflow.num_nodes()));
  std::set<int> nodes;
  int64_t bytes = 0;
  for (const obs::OpProfile& op : profile.ops) {
    EXPECT_TRUE(nodes.insert(op.node).second)
        << "node " << op.node << " profiled twice";
    EXPECT_GE(op.self_ns, 0);
    bytes += op.bytes;
  }
  EXPECT_EQ(bytes, par->exec.bytes_processed);

  // The work basis is identical to the serial profile op-for-op (self
  // times are wall measurements and may differ; rows and bytes may not) —
  // this is what keeps ns/row calibration fits thread-count independent.
  ASSERT_EQ(serial->profile.ops.size(), profile.ops.size());
  for (size_t i = 0; i < profile.ops.size(); ++i) {
    EXPECT_EQ(profile.ops[i].node, serial->profile.ops[i].node);
    EXPECT_EQ(profile.ops[i].op, serial->profile.ops[i].op);
    EXPECT_EQ(profile.ops[i].rows_in, serial->profile.ops[i].rows_in);
    EXPECT_EQ(profile.ops[i].rows_out, serial->profile.ops[i].rows_out);
    EXPECT_EQ(profile.ops[i].bytes, serial->profile.ops[i].bytes);
    EXPECT_EQ(profile.ops[i].inputs, serial->profile.ops[i].inputs);
  }

  // Cumulative (inclusive) times stay consistent over the merged profile.
  const std::vector<int64_t> cum = obs::CumulativeNs(profile);
  ASSERT_EQ(cum.size(), profile.ops.size());
  for (size_t i = 0; i < profile.ops.size(); ++i) {
    EXPECT_GE(cum[i], profile.ops[i].self_ns);
  }
  EXPECT_GE(profile.TotalSelfNs(), 0);
}

TEST(ProfilerTest, FoldedStacksAndTableRenderEveryFrame) {
  ProfilerGuard guard;
  const auto ex = testing_util::MakePaperExample();
  Executor executor(&ex.workflow);
  auto result = executor.Execute(ex.sources);
  ASSERT_TRUE(result.ok());
  result->profile.tap_ns = 1234;

  const std::string folded = obs::FoldedStacks(result->profile);
  for (const obs::OpProfile& op : result->profile.ops) {
    EXPECT_NE(folded.find(op.label), std::string::npos) << op.label;
  }
  EXPECT_NE(folded.find("tap.observe"), std::string::npos);
  // Folded lines are "frames... weight\n": same line count as frames.
  const std::string table = obs::FormatProfileTable(result->profile);
  for (const obs::OpProfile& op : result->profile.ops) {
    EXPECT_NE(table.find(op.label), std::string::npos) << op.label;
  }
}

TEST(ProfilerTest, JsonRoundTripPreservesOpsAndTapNs) {
  obs::RunProfile profile;
  obs::OpProfile op;
  op.node = 3;
  op.op = "Join";
  op.label = "join3";
  op.inputs = {0, 1};
  op.self_ns = 42000;
  op.rows_in = 440;
  op.rows_out = 400;
  op.bytes = 3520;
  op.pred_ns = 41000.0;
  profile.ops.push_back(op);
  profile.tap_ns = 777;

  const obs::RunProfile back = obs::ProfileFromJson(obs::ProfileToJson(profile));
  ASSERT_EQ(back.ops.size(), 1u);
  EXPECT_EQ(back.ops[0].node, 3);
  EXPECT_EQ(back.ops[0].op, "Join");
  EXPECT_EQ(back.ops[0].label, "join3");
  EXPECT_EQ(back.ops[0].inputs, std::vector<int>({0, 1}));
  EXPECT_EQ(back.ops[0].self_ns, 42000);
  EXPECT_EQ(back.ops[0].rows_in, 440);
  EXPECT_EQ(back.ops[0].rows_out, 400);
  EXPECT_EQ(back.ops[0].bytes, 3520);
  EXPECT_DOUBLE_EQ(back.ops[0].pred_ns, 41000.0);
  EXPECT_EQ(back.tap_ns, 777);
}

// ---------------------------------------------------------------------------
// Calibration
// ---------------------------------------------------------------------------

obs::RunRecord ProfiledRecord(const std::string& run_id) {
  obs::RunRecord record;
  record.run_id = run_id;
  record.workflow = "wf";
  record.fingerprint = "abcd0123abcd0123";
  obs::OpProfile source;
  source.node = 0;
  source.op = "Source";
  source.label = "source0";
  source.self_ns = 1000;
  source.rows_out = 100;  // weight 100 -> 10 ns/row
  record.profile.ops.push_back(source);
  obs::OpProfile join;
  join.node = 1;
  join.op = "Join";
  join.label = "join1";
  join.inputs = {0};
  join.self_ns = 40000;
  join.rows_in = 200;  // weight 200 -> 200 ns/row
  join.rows_out = 150;
  record.profile.ops.push_back(join);
  record.profile.tap_ns = 2500;  // over 250 tapped rows -> 10 ns/row
  return record;
}

TEST(CalibrationTest, RatioFitPerClassAndTapPseudoClass) {
  const std::vector<obs::RunRecord> records = {ProfiledRecord("run-1"),
                                               ProfiledRecord("run-2")};
  const obs::CostCalibration cal = obs::FitCalibration(records);
  EXPECT_EQ(cal.runs, 2);
  EXPECT_DOUBLE_EQ(cal.NsPerRow("Source"), 10.0);
  EXPECT_DOUBLE_EQ(cal.NsPerRow("Join"), 200.0);
  // The tap pseudo-class: observe ns over the rows the taps saw (rows_out
  // totals), fitted alongside the operator classes.
  EXPECT_DOUBLE_EQ(cal.NsPerRow("tap"), 2.0 * 2500 / (2.0 * 250));
  // Unfitted classes fall back to the pessimistic default.
  EXPECT_DOUBLE_EQ(cal.NsPerRow("Filter"),
                   obs::CostCalibration::kDefaultNsPerRow);
  EXPECT_DOUBLE_EQ(cal.PredictNs("Join", 10), 2000.0);
}

TEST(CalibrationTest, FitSkipsRecordsWithoutProfiles) {
  obs::RunRecord bare;
  bare.run_id = "run-1";
  const obs::CostCalibration cal = obs::FitCalibration({bare});
  EXPECT_EQ(cal.runs, 0);
  EXPECT_TRUE(cal.empty());
}

TEST(CalibrationTest, JsonAndFileRoundTrip) {
  const obs::CostCalibration cal =
      obs::FitCalibration({ProfiledRecord("run-1")});
  const auto back = obs::CostCalibration::FromJson(cal.ToJson());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->runs, cal.runs);
  EXPECT_EQ(back->classes.size(), cal.classes.size());
  EXPECT_DOUBLE_EQ(back->NsPerRow("Join"), cal.NsPerRow("Join"));

  const std::string path = TempPath("calibration.json");
  ASSERT_TRUE(cal.Save(path).ok());
  const auto loaded = obs::CostCalibration::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded->NsPerRow("Source"), cal.NsPerRow("Source"));
  std::remove(path.c_str());
}

TEST(CalibrationTest, FromEnvLoadsNamedOverlay) {
  const std::string path = TempPath("calibration_env.json");
  const obs::CostCalibration cal =
      obs::FitCalibration({ProfiledRecord("run-1")});
  ASSERT_TRUE(cal.Save(path).ok());
  ::setenv("ETLOPT_CALIBRATION", path.c_str(), 1);
  const obs::CostCalibration from_env = obs::CostCalibration::FromEnv();
  ::unsetenv("ETLOPT_CALIBRATION");
  EXPECT_FALSE(from_env.empty());
  EXPECT_DOUBLE_EQ(from_env.NsPerRow("Join"), cal.NsPerRow("Join"));
  std::remove(path.c_str());

  EXPECT_TRUE(obs::CostCalibration::FromEnv().empty());
}

TEST(CalibrationTest, AnnotatePredictionsAndPlanQError) {
  obs::RunRecord record = ProfiledRecord("run-1");
  const obs::CostCalibration cal = obs::FitCalibration({record});
  obs::AnnotatePredictions(cal, &record.profile);
  for (const obs::OpProfile& op : record.profile.ops) {
    EXPECT_GE(op.pred_ns, 0.0) << op.label;
  }
  // A ratio fit is exact on its own fitting data when each class has one
  // op: the per-plan q-error collapses to 1.
  EXPECT_DOUBLE_EQ(obs::PlanCostQError(record.profile), 1.0);

  // Un-annotated profiles report no q-error rather than a fake 1.0.
  obs::RunProfile blank = ProfiledRecord("run-2").profile;
  EXPECT_DOUBLE_EQ(obs::PlanCostQError(blank), 0.0);
}

// ---------------------------------------------------------------------------
// Ledger round trip of profile + build provenance
// ---------------------------------------------------------------------------

TEST(LedgerProfileTest, ProfileAndBuildSurviveLedgerRoundTrip) {
  const std::string path = TempPath("profile_roundtrip.ledger.jsonl");
  std::remove(path.c_str());
  obs::RunLedger ledger(path);

  obs::RunRecord record = ProfiledRecord("run-1");
  record.build.git_sha = "deadbeef";
  record.build.compiler = "GNU 13.2.0";
  record.build.build_type = "Release";
  record.build.sanitizers = "asan,ubsan";
  ASSERT_TRUE(ledger.Append(record).ok());

  const auto loaded = ledger.Load();
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->records.size(), 1u);
  const obs::RunRecord& back = loaded->records[0];
  ASSERT_EQ(back.profile.ops.size(), 2u);
  EXPECT_EQ(back.profile.ops[1].op, "Join");
  EXPECT_EQ(back.profile.ops[1].self_ns, 40000);
  EXPECT_EQ(back.profile.tap_ns, 2500);
  EXPECT_EQ(back.build.git_sha, "deadbeef");
  EXPECT_EQ(back.build.compiler, "GNU 13.2.0");
  EXPECT_EQ(back.build.build_type, "Release");
  EXPECT_EQ(back.build.sanitizers, "asan,ubsan");
  std::remove(path.c_str());
}

TEST(LedgerProfileTest, RecordsWithoutProfilesStayLean) {
  obs::RunRecord record;
  record.run_id = "run-1";
  const std::string line = record.ToJsonLine();
  EXPECT_EQ(line.find("\"profile\""), std::string::npos);
  EXPECT_EQ(line.find("\"build\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Two-run end-to-end: profile, fit, re-run calibrated
// ---------------------------------------------------------------------------

TEST(CalibrationE2ETest, CalibratedSecondRunShrinksPlanCostQError) {
  ProfilerGuard guard;
  const std::string path = TempPath("calibrate_e2e.ledger.jsonl");
  std::remove(path.c_str());
  obs::RunLedger ledger(path);

  // ---- Run 1: uncalibrated. Predictions come from the pessimistic
  // per-class default, so the per-plan cost q-error is large. ----
  const auto ex1 = testing_util::MakePaperExample(7, 400, 40, 25);
  Pipeline pipeline1;
  const Result<CycleOutcome> cycle1 =
      pipeline1.RunCycle(ex1.workflow, ex1.sources);
  ASSERT_TRUE(cycle1.ok()) << cycle1.status().ToString();
  ASSERT_FALSE(cycle1->run.exec.profile.empty());
  const double q1 = obs::PlanCostQError(cycle1->run.exec.profile);
  ASSERT_GT(q1, 1.0);

  const obs::RunRecord record1 = MakeRunRecord(*cycle1, "run-1");
  ASSERT_FALSE(record1.profile.empty());
  EXPECT_FALSE(record1.build.git_sha.empty());
  ASSERT_TRUE(ledger.Append(record1).ok());

  // ---- Fit a calibration from the ledger, as `advisor calibrate` does. --
  const auto loaded = ledger.Load();
  ASSERT_TRUE(loaded.ok());
  const obs::CostCalibration cal = obs::FitCalibration(loaded->records);
  ASSERT_EQ(cal.runs, 1);
  ASSERT_FALSE(cal.empty());

  // ---- Run 2: same workload under the overlay. The fitted per-class
  // rates land near the measured ones, so the q-error must strictly
  // shrink (by orders of magnitude; strict < keeps the test robust). ----
  PipelineOptions options2;
  options2.calibration = cal;
  Pipeline pipeline2(options2);
  const auto ex2 = testing_util::MakePaperExample(7, 400, 40, 25);
  const Result<CycleOutcome> cycle2 =
      pipeline2.RunCycle(ex2.workflow, ex2.sources);
  ASSERT_TRUE(cycle2.ok());
  ASSERT_FALSE(cycle2->run.exec.profile.empty());
  const double q2 = obs::PlanCostQError(cycle2->run.exec.profile);
  ASSERT_GT(q2, 0.0);
  EXPECT_LT(q2, q1) << "calibrated run must beat the default cost model";

  const obs::RunRecord record2 = MakeRunRecord(*cycle2, "run-2");
  ASSERT_TRUE(ledger.Append(record2).ok());

  // ---- The advisor report renders both runs from the ledger alone. ----
  const auto reloaded = ledger.Load();
  ASSERT_TRUE(reloaded.ok());
  ASSERT_EQ(reloaded->records.size(), 2u);
  const std::string report = obs::FormatRunReportMarkdown(reloaded->records);
  EXPECT_NE(report.find("run-1"), std::string::npos);
  EXPECT_NE(report.find("run-2"), std::string::npos);
  EXPECT_NE(report.find("card q-error"), std::string::npos);
  EXPECT_NE(report.find("cost q-error"), std::string::npos);

  const Json doc = obs::RunReportJson(reloaded->records);
  EXPECT_EQ(doc.GetString("kind"), "etlopt-run-report");
  const Json* workflows = doc.Find("workflows");
  ASSERT_NE(workflows, nullptr);
  ASSERT_EQ(workflows->array().size(), 1u);
  const Json* runs = workflows->array()[0].Find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->array().size(), 2u);
  const double jq1 = runs->array()[0].GetDouble("plan_cost_qerror");
  const double jq2 = runs->array()[1].GetDouble("plan_cost_qerror");
  EXPECT_GT(jq1, 0.0);
  EXPECT_GT(jq2, 0.0);
  EXPECT_LT(jq2, jq1);
  std::remove(path.c_str());
}

TEST(CalibrationE2ETest, CalibrationScalesSelectionCostModelUniformly) {
  // The overlay converts tap budgeting from unit-costs to nanoseconds; the
  // scaling is uniform, so the selected statistics stay identical.
  const auto ex = testing_util::MakePaperExample();
  Pipeline plain;
  const auto base = plain.Analyze(ex.workflow);
  ASSERT_TRUE(base.ok());

  obs::CostCalibration cal;
  cal.classes["tap"] = {1000, 5000, 5.0};
  cal.runs = 1;
  PipelineOptions options;
  options.calibration = cal;
  Pipeline calibrated(options);
  const auto scaled = calibrated.Analyze(ex.workflow);
  ASSERT_TRUE(scaled.ok());

  ASSERT_EQ((*base)->blocks.size(), (*scaled)->blocks.size());
  for (size_t b = 0; b < (*base)->blocks.size(); ++b) {
    const SelectionResult& s0 = (*base)->blocks[b]->selection;
    const SelectionResult& s1 = (*scaled)->blocks[b]->selection;
    EXPECT_EQ(s0.observed, s1.observed);
  }
}

// ---------------------------------------------------------------------------
// Run report dashboard
// ---------------------------------------------------------------------------

TEST(RunReportTest, EmptyLedgerRendersPlaceholder) {
  const std::string report = obs::FormatRunReportMarkdown({});
  EXPECT_NE(report.find("empty ledger"), std::string::npos);
  const Json doc = obs::RunReportJson({});
  const Json* workflows = doc.Find("workflows");
  ASSERT_NE(workflows, nullptr);
  EXPECT_TRUE(workflows->array().empty());
}

TEST(RunReportTest, FlagsBuildMismatchAgainstLatestProvenance) {
  obs::RunRecord old_build = ProfiledRecord("run-1");
  old_build.build.git_sha = "00000000";
  old_build.build.compiler = "GNU 12.0.0";
  old_build.build.build_type = "Debug";
  obs::RunRecord new_build = ProfiledRecord("run-2");
  new_build.build.git_sha = "11111111";
  new_build.build.compiler = "GNU 13.2.0";
  new_build.build.build_type = "Release";

  const Json doc = obs::RunReportJson({old_build, new_build});
  const Json* workflows = doc.Find("workflows");
  ASSERT_NE(workflows, nullptr);
  ASSERT_EQ(workflows->array().size(), 1u);
  const Json* runs = workflows->array()[0].Find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->array().size(), 2u);
  // run-2 is the reference build; run-1 differs in compiler + build type.
  EXPECT_EQ(runs->array()[0].GetString("build_sha"), "00000000");
  const Json* cmp0 = runs->array()[0].Find("build_comparable");
  const Json* cmp1 = runs->array()[1].Find("build_comparable");
  ASSERT_NE(cmp0, nullptr);
  ASSERT_NE(cmp1, nullptr);
  EXPECT_FALSE(cmp0->bool_value());
  EXPECT_TRUE(cmp1->bool_value());

  const std::string report =
      obs::FormatRunReportMarkdown({old_build, new_build});
  EXPECT_NE(report.find("build-mismatch"), std::string::npos);
}

TEST(RunReportTest, WorstCalibratedClassesAreRankedAndBounded) {
  obs::RunRecord record = ProfiledRecord("run-1");
  // Annotate with a deliberately bad overlay so per-class q-errors differ.
  obs::CostCalibration bad;
  bad.classes["Source"] = {100, 1000, 10.0};   // exact -> q-error 1
  bad.classes["Join"] = {200, 8000000, 40000.0};  // 200x over -> q-error 200
  bad.runs = 1;
  obs::AnnotatePredictions(bad, &record.profile);

  obs::RunReportOptions options;
  options.top_k = 1;
  const Json doc = obs::RunReportJson({record}, options);
  const Json* workflows = doc.Find("workflows");
  ASSERT_NE(workflows, nullptr);
  ASSERT_EQ(workflows->array().size(), 1u);
  const Json* worst = workflows->array()[0].Find("worst_calibrated");
  ASSERT_NE(worst, nullptr);
  ASSERT_EQ(worst->array().size(), 1u);
  EXPECT_EQ(worst->array()[0].GetString("class"), "Join");
}

// ---------------------------------------------------------------------------
// Build provenance
// ---------------------------------------------------------------------------

TEST(BuildInfoTest, CurrentBuildCarriesProvenance) {
  const obs::BuildInfo info = obs::CurrentBuildInfo();
  EXPECT_FALSE(info.git_sha.empty());
  EXPECT_FALSE(info.compiler.empty());
  EXPECT_FALSE(info.Summary().empty());
  EXPECT_TRUE(info.ComparableWith(info));

  obs::BuildInfo other = info;
  other.git_sha = "different";
  EXPECT_TRUE(info.ComparableWith(other)) << "sha alone never disqualifies";
  other.build_type = info.build_type + "-not";
  EXPECT_FALSE(info.ComparableWith(other));
}

}  // namespace
}  // namespace etlopt
