# Empty dependencies file for reoptimization_lifecycle.
# This may be replaced when dependencies are built.
