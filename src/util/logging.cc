#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <chrono>
#include <mutex>
#include <thread>

namespace etlopt {
namespace {

// Honors ETLOPT_LOG_LEVEL at startup: debug|info|warning|warn|error (case
// sensitive, lowercase) or a numeric 0-3. Unset/unparsable keeps the
// default (warning).
int LevelFromEnv() {
  const char* v = std::getenv("ETLOPT_LOG_LEVEL");
  if (v == nullptr || v[0] == '\0') {
    return static_cast<int>(LogLevel::kWarning);
  }
  if (std::strcmp(v, "debug") == 0) return static_cast<int>(LogLevel::kDebug);
  if (std::strcmp(v, "info") == 0) return static_cast<int>(LogLevel::kInfo);
  if (std::strcmp(v, "warning") == 0 || std::strcmp(v, "warn") == 0) {
    return static_cast<int>(LogLevel::kWarning);
  }
  if (std::strcmp(v, "error") == 0) return static_cast<int>(LogLevel::kError);
  if (v[0] >= '0' && v[0] <= '3' && v[1] == '\0') return v[0] - '0';
  return static_cast<int>(LogLevel::kWarning);
}

std::atomic<int> g_min_level{LevelFromEnv()};

// Serializes emission so concurrent log lines never interleave.
std::mutex& EmitMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

// Small stable per-thread id for log prefixes (1, 2, ... in first-log
// order), cheaper and more readable than the opaque std::thread::id.
int CurrentLogTid() {
  static std::atomic<int> next{0};
  thread_local int tid = next.fetch_add(1, std::memory_order_relaxed) + 1;
  return tid;
}

// ISO-8601 UTC with milliseconds, e.g. "2026-08-06T12:34:56.789Z".
void FormatTimestamp(char* buf, size_t size) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  std::tm tm{};
  gmtime_r(&secs, &tm);
  std::snprintf(buf, size, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, millis < 0 ? 0 : millis);
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  char ts[80];
  FormatTimestamp(ts, sizeof(ts));
  stream_ << "[" << ts << " " << LevelName(level) << " t" << CurrentLogTid()
          << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::string line = stream_.str();
  line.push_back('\n');
  // One fwrite per line under a mutex: lines from concurrent threads come
  // out whole, never interleaved.
  std::lock_guard<std::mutex> lock(EmitMutex());
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

}  // namespace internal_logging
}  // namespace etlopt
