#ifndef ETLOPT_UTIL_STRING_UTIL_H_
#define ETLOPT_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace etlopt {

// Joins string pieces with a separator: Join({"a","b"}, ", ") == "a, b".
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

// Splits on a separator character. Empty pieces are kept ("a;;b" -> three
// pieces); an empty input yields one empty piece.
std::vector<std::string> SplitString(const std::string& text, char sep);

// Strips leading/trailing ASCII whitespace.
std::string TrimString(const std::string& text);

// Formats an integer with thousands separators: 1811197 -> "1,811,197".
std::string WithThousands(int64_t value);

// Left-pads / right-pads to a fixed width (for aligned table output).
std::string PadLeft(const std::string& s, size_t width);
std::string PadRight(const std::string& s, size_t width);

}  // namespace etlopt

#endif  // ETLOPT_UTIL_STRING_UTIL_H_
