// Reproduces Figure 10: the time taken for statistics identification per
// workflow — CSS generation (rule application, Algorithm 1) and the
// optimal-statistics selection (the Section 5.2 integer program, with the
// greedy fallback for instances beyond the built-in simplex's reach),
// without and with the union-division rules.
//
// The paper reports both phases within ~100 ms per workflow on a commercial
// LP solver; our bundled solver is slower in absolute terms on the larger
// instances, but the shape of interest holds: union-division adds only a
// small overhead to CSS generation and selection.

#include <cstdio>

#include "suite_analysis.h"

int main() {
  using etlopt::bench::AnalyzeWorkflow;
  using etlopt::bench::SelectForWorkflow;
  using etlopt::bench::SelectionSummary;

  etlopt::IlpSelectorOptions ilp;
  ilp.time_limit_seconds = 1.5;
  ilp.max_nodes = 1500;

  std::printf("== Figure 10: time taken for statistics identification ==\n");
  std::printf("%-4s %-18s | %11s %11s | %11s %11s\n", "wf", "name",
              "gen(noUD)ms", "gen(UD)ms", "sel(noUD)ms", "sel(UD)ms");
  double sum_gen_noud = 0, sum_gen_ud = 0, sum_sel_noud = 0, sum_sel_ud = 0;
  for (int i = 1; i <= 30; ++i) {
    const etlopt::bench::WorkflowAnalysis wa = AnalyzeWorkflow(i);
    const SelectionSummary sel_noud =
        SelectForWorkflow(wa, /*with_ud=*/false, /*use_ilp=*/true, ilp);
    const SelectionSummary sel_ud =
        SelectForWorkflow(wa, /*with_ud=*/true, /*use_ilp=*/true, ilp);
    std::printf("%-4d %-18s | %11.2f %11.2f | %11.1f %11.1f\n", i,
                wa.spec.name.c_str(), wa.gen_ms_noud, wa.gen_ms_ud,
                sel_noud.select_ms, sel_ud.select_ms);
    sum_gen_noud += wa.gen_ms_noud;
    sum_gen_ud += wa.gen_ms_ud;
    sum_sel_noud += sel_noud.select_ms;
    sum_sel_ud += sel_ud.select_ms;
  }
  std::printf("%-4s %-18s | %11.2f %11.2f | %11.1f %11.1f\n", "sum", "",
              sum_gen_noud, sum_gen_ud, sum_sel_noud, sum_sel_ud);
  std::printf("\nshape check (paper): CSS generation is fast everywhere and "
              "union-division adds\nno considerable overhead; selection "
              "dominates on the largest join workflows.\n");
  return 0;
}
