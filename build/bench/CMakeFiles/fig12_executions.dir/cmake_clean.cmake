file(REMOVE_RECURSE
  "CMakeFiles/fig12_executions.dir/fig12_executions.cc.o"
  "CMakeFiles/fig12_executions.dir/fig12_executions.cc.o.d"
  "fig12_executions"
  "fig12_executions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_executions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
