// Optimization under resource constraints (Section 6.1): when the memory
// available for statistics collectors is smaller than the optimal set, the
// framework observes what fits and schedules the remaining SE cardinalities
// as trivial counters in later runs with re-ordered plans — the mix of
// trivial and non-trivial CSSs that generalizes pay-as-you-go.
//
// This example sweeps the memory budget on the union-division anchor
// workflow (wf3: TradeEnrich) and shows the space-time trade-off: more
// memory, fewer executions.
//
// Build & run:  ./build/examples/memory_budget

#include <cstdio>

#include "core/lifecycle.h"
#include "css/generator.h"
#include "datagen/workload_suite.h"
#include "opt/resource.h"
#include "util/string_util.h"

using namespace etlopt;

int main() {
  const WorkloadSpec spec = BuildWorkload(3);  // TradeEnrich
  std::printf("workflow: %s\n%s\n", spec.name.c_str(),
              spec.workflow.ToString().c_str());

  const std::vector<Block> blocks = PartitionBlocks(spec.workflow);
  const BlockContext ctx =
      BlockContext::Build(&spec.workflow, blocks[0]).value();
  const PlanSpace ps = PlanSpace::Build(ctx).value();
  const CssCatalog catalog = GenerateCss(ctx, ps, {});
  CostModel cost_model(&spec.workflow.catalog(), {});
  const SelectionProblem problem =
      BuildSelectionProblem(ctx, ps, catalog, cost_model);

  std::printf("plan space: %d SEs, %d statistics, %d CSS\n\n",
              ps.num_ses(), catalog.num_stats(), catalog.num_css());
  std::printf("%14s | %14s %9s %11s %11s\n", "budget", "memory used",
              "deferred", "extra runs", "total runs");
  for (double budget : {5.0, 1000.0, 20000.0, 40000.0, 2e6}) {
    const BudgetedSelection plan =
        SelectWithBudget(problem, ctx, ps, budget);
    std::printf("%14s | %14s %9zu %11d %11d\n",
                WithThousands(static_cast<int64_t>(budget)).c_str(),
                WithThousands(static_cast<int64_t>(plan.memory_used)).c_str(),
                plan.deferred.size(),
                plan.deferred.empty() ? 0 : plan.reorder_plan.executions,
                plan.total_executions());
  }
  std::printf("\nWith ~30k units (the union-division optimum) a single "
              "instrumented run covers\neverything; squeezing the budget "
              "pushes coverage into re-ordered executions.\n");

  // Now actually RUN the lifecycle at a starved budget (5 units) on scaled
  // data and show that the framework still ends up with every SE
  // cardinality — it just needs one extra re-ordered execution.
  std::printf("\n--- executing the starved lifecycle (budget 5, 1%% scale "
              "data) ---\n");
  const SourceMap sources = GenerateSources(spec, 99, 0.01);
  const BudgetedLifecycleResult life =
      RunBudgetedLifecycle(spec.workflow, sources, 5.0).value();
  std::printf("executions performed: %d\n", life.executions);
  for (const auto& [se, card] : life.block_cards[0]) {
    std::printf("  SE mask %u -> %lld rows\n", se,
                static_cast<long long>(card));
  }
  std::printf("optimized plan cost %.0f (designed %.0f)\n",
              life.optimized_cost, life.initial_cost);
  return 0;
}
