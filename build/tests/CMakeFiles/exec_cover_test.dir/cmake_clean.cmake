file(REMOVE_RECURSE
  "CMakeFiles/exec_cover_test.dir/exec_cover_test.cc.o"
  "CMakeFiles/exec_cover_test.dir/exec_cover_test.cc.o.d"
  "exec_cover_test"
  "exec_cover_test.pdb"
  "exec_cover_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_cover_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
