#ifndef ETLOPT_OPT_ILP_SELECTOR_H_
#define ETLOPT_OPT_ILP_SELECTOR_H_

#include "opt/selection.h"

namespace etlopt {

struct IlpSelectorOptions {
  // Instances whose LP tableau would exceed roughly this many cells fall
  // back to the greedy heuristic (flagged in SelectionResult::method) — the
  // paper itself notes greedy heuristics as the fallback when the LP grows
  // (Section 5.3).
  int64_t max_tableau_cells = 4000000;
  double time_limit_seconds = 3.0;
  int max_nodes = 3000;
};

// The 0-1 integer program of Section 5.2: variables x (observe), y
// (computable), z (CSS covered), objective min Σ c_i x_i. Integer candidates
// are verified against the monotone-closure semantics (see DESIGN.md §5 for
// why the y/z constraint system alone can admit circular support when
// union-division rules are present) and cut when circular. Warm-started with
// the greedy solution.
SelectionResult SelectIlp(const SelectionProblem& problem,
                          const IlpSelectorOptions& options = {});

}  // namespace etlopt

#endif  // ETLOPT_OPT_ILP_SELECTOR_H_
