// Reproduces the Section 7 data-characteristics table: Max / Min / Mean /
// Median of table cardinalities (Card) and per-column unique values (UV)
// over the Zipf-generated source tables of the 30-workflow suite.
//
// Paper reference values:
//        Card      UV
//   Max  417874    417874
//   Min  3342      102
//   Mean 104466    65768
//   Med. 52234     6529
//
// Usage: table1_datachar [row_scale]   (default 1.0 = paper scale)

#include <cstdio>
#include <cstdlib>

#include "datagen/workload_suite.h"
#include "util/string_util.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  double scale = 1.0;
  if (argc > 1) scale = std::atof(argv[1]);
  std::printf("== Table: data characteristics of the input relations "
              "(Section 7) ==\n");
  std::printf("row scale: %.3f\n\n", scale);

  etlopt::Timer timer;
  const etlopt::DataCharacteristics dc =
      etlopt::SummarizeSuiteData(/*seed=*/7, scale);

  using etlopt::PadLeft;
  using etlopt::WithThousands;
  auto row = [](const char* label, const std::string& card,
                const std::string& uv) {
    std::printf("  %-8s %12s %12s\n", label, card.c_str(), uv.c_str());
  };
  std::printf("  %-8s %12s %12s\n", "Stat", "Card", "UV");
  row("Max", WithThousands(dc.card_max), WithThousands(dc.uv_max));
  row("Min", WithThousands(dc.card_min), WithThousands(dc.uv_min));
  row("Mean", WithThousands(static_cast<int64_t>(dc.card_mean)),
      WithThousands(static_cast<int64_t>(dc.uv_mean)));
  row("Median", WithThousands(static_cast<int64_t>(dc.card_median)),
      WithThousands(static_cast<int64_t>(dc.uv_median)));
  std::printf("\n  (%d tables, %d attribute columns, generated in %.1fs)\n",
              dc.num_tables, dc.num_columns, timer.ElapsedSeconds());
  std::printf("\npaper reference: Card 417874/3342/104466/52234, "
              "UV 417874/102/65768/6529\n");
  return 0;
}
