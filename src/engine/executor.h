#ifndef ETLOPT_ENGINE_EXECUTOR_H_
#define ETLOPT_ENGINE_EXECUTOR_H_

#include <string>
#include <unordered_map>

#include "engine/table.h"
#include "etl/workflow.h"
#include "util/status.h"

namespace etlopt {

// Source bindings: table name -> data.
using SourceMap = std::unordered_map<std::string, Table>;

// Everything produced by one run of a workflow. `node_outputs` caches every
// node's output so the instrumentation layer can observe any pipeline point
// after the fact — semantically equivalent to the per-tuple handlers that
// commercial engines expose (Section 3.2.5) while keeping the engine simple.
struct ExecutionResult {
  std::unordered_map<NodeId, Table> node_outputs;
  // Rows that found no match, per join node and side (captured for every
  // join so reject links — designed or instrumentation-added — are
  // available).
  std::unordered_map<NodeId, Table> join_rejects;        // left-side rejects
  std::unordered_map<NodeId, Table> join_rejects_right;  // right-side rejects
  // Materialize / Sink outputs, by target name.
  std::unordered_map<std::string, Table> targets;
  // Total tuples flowing through all operators: a machine-independent proxy
  // for the run's work, used to compare initial vs optimized plans.
  int64_t rows_processed = 0;
  // Total bytes those tuples occupied (8 bytes per value, per the row
  // layout): the denominator for per-MB instrumentation overhead reporting.
  int64_t bytes_processed = 0;
};

// Single-threaded row-at-a-time executor for ETL workflows.
class Executor {
 public:
  explicit Executor(const Workflow* workflow);

  Result<ExecutionResult> Execute(const SourceMap& sources) const;

 private:
  const Workflow* wf_;
};

// Executes a join of two tables on a shared attribute (hash join; build on
// the right input). When `rejects` is non-null it receives the left rows
// with no match. Exposed for the instrumentation side-joins of the
// union-division statistics.
Table HashJoin(const Table& left, const Table& right, AttrId attr,
               Table* rejects);

// Sort-merge implementation of the same join (identical output multiset,
// different physical cost profile). The executor dispatches on
// JoinSpec::algorithm; kAuto uses hash.
Table SortMergeJoin(const Table& left, const Table& right, AttrId attr,
                    Table* rejects);

}  // namespace etlopt

#endif  // ETLOPT_ENGINE_EXECUTOR_H_
