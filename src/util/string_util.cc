#include "util/string_util.h"

#include <cctype>
#include <cstdlib>

namespace etlopt {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> SplitString(const std::string& text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (;;) {
    const size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string TrimString(const std::string& text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string WithThousands(int64_t value) {
  const bool neg = value < 0;
  uint64_t v = neg ? -static_cast<uint64_t>(value) : static_cast<uint64_t>(value);
  std::string digits = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  if (neg) out += '-';
  return std::string(out.rbegin(), out.rend());
}

std::string PadLeft(const std::string& s, size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string PadRight(const std::string& s, size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

}  // namespace etlopt
