#ifndef ETLOPT_ENGINE_INSTRUMENTATION_H_
#define ETLOPT_ENGINE_INSTRUMENTATION_H_

#include <functional>
#include <vector>

#include "engine/executor.h"
#include "planspace/block.h"
#include "stats/stat_key.h"
#include "stats/stat_store.h"

namespace etlopt {

class ThreadPool;  // util/thread_pool.h

// Collection policy for the instrumentation taps. The default (no memory
// budget) materializes exact collectors — O(distinct) memory per
// distinct/histogram tap. With a positive budget, ObserveStatistics checks
// whether the estimated exact-tap footprint fits; when it does not, the
// distinct/histogram taps switch to streaming sketches (src/sketch: HLL,
// Count-Min + KMV key sample) whose memory is bounded by the per-tap budget
// share, and the observed StatValues carry their relative-error parameter.
// Count taps (Card, RejectJoinCard) are O(1)/streaming either way and stay
// exact.
struct TapOptions {
  // <= 0: always exact (the seed behavior).
  int64_t memory_budget_bytes = 0;

  // ---- robustness wiring (all off by default) ----
  // Salvage mode, used after an aborted run: keys whose pipeline-point
  // tables fell past the abort are skipped (and counted in
  // TapReport::salvage_skipped) instead of failing the whole observation —
  // the completed prefix still yields its statistics.
  bool salvage = false;
  // Periodic tap checkpointing: after every `checkpoint_every_rows` tapped
  // rows, `on_checkpoint` receives the statistics observed so far, so a
  // caller (core/pipeline) can flush them to a crash-safe sidecar. <= 0 or
  // a null callback disables checkpointing.
  int64_t checkpoint_every_rows = 0;
  std::function<void(const StatStore& partial)> on_checkpoint;

  // Defaults overridden by ETLOPT_TAP_BUDGET (bytes).
  static TapOptions FromEnv();
};

// What the taps of one ObserveStatistics call cost: how many taps ran in
// each mode, the estimated bytes exact collectors would have held, and the
// bytes the chosen collectors actually held.
struct TapReport {
  int exact_taps = 0;
  int sketch_taps = 0;
  int64_t exact_bytes_estimate = 0;
  int64_t tap_bytes = 0;
  // ---- robustness accounting ----
  // Exact taps that hit an injected allocation failure and fell back to the
  // bounded-memory sketch collector.
  int downgraded_taps = 0;
  // Taps lost entirely (allocation failed for sketch too, or the tap kind
  // has no sketch form): the run continued un-instrumented for these keys.
  int disabled_taps = 0;
  // Keys skipped in salvage mode because their inputs fell past an abort.
  int salvage_skipped = 0;
  // Rows fed through taps (the checkpoint cadence counter).
  int64_t rows_tapped = 0;
  // on_checkpoint invocations.
  int64_t checkpoint_flushes = 0;
  // Wall time ObserveStatistics spent inside the taps — the measured
  // instrumentation overhead, kept separate from operator self time in the
  // run profile (RunProfile::tap_ns) and fit as the "tap" pseudo-class by
  // the cost-model calibration.
  int64_t observe_ns = 0;
  // Wall time merging per-partition tap states back into one statistic
  // (zero when no key tapped partition slices).
  int64_t merge_ns = 0;

  void Accumulate(const TapReport& other) {
    exact_taps += other.exact_taps;
    sketch_taps += other.sketch_taps;
    exact_bytes_estimate += other.exact_bytes_estimate;
    tap_bytes += other.tap_bytes;
    downgraded_taps += other.downgraded_taps;
    disabled_taps += other.disabled_taps;
    salvage_skipped += other.salvage_skipped;
    rows_tapped += other.rows_tapped;
    checkpoint_flushes += other.checkpoint_flushes;
    observe_ns += other.observe_ns;
    merge_ns += other.merge_ns;
  }
};

// Per-partition tap surface of a partitioned run (engine/parallel/): the
// output slices of every node that ran partitioned, plus an optional pool
// to scan them on. When a Card/Distinct/Hist key's pipeline point has
// slices, its tap runs partition-local and the per-partition states merge —
// exact collectors by addition (counts, histogram buckets) and key-set
// union (distinct), sketches via their Merge paths — yielding the same
// statistic a single-stream tap over the gathered table produces.
// Reject-join keys always read the gathered tables (their reject inputs are
// merged at the barrier).
struct ParallelTapContext {
  const std::unordered_map<NodeId, std::vector<Table>>* slices = nullptr;
  ThreadPool* pool = nullptr;  // null: slices are scanned on this thread
};

// Observes the requested (observable) statistics from a run of the initial
// plan (steps 5-6 of the framework, Fig. 2). Every key must satisfy
// IsObservable for this block. Counters and histograms read the cached
// pipeline-point tables; reject-join statistics attach to the designed join
// of L with k (adding the reject link the paper describes for Fig. 5) and
// evaluate the small side-join against the on-path R table. Under a sketch
// `taps` budget the side join is never materialized — the reject rows
// stream against the R-side hash table.
Result<StatStore> ObserveStatistics(const BlockContext& ctx,
                                    const ExecutionResult& exec,
                                    const std::vector<StatKey>& keys,
                                    const TapOptions& taps = {},
                                    TapReport* report = nullptr,
                                    const ParallelTapContext& par = {});

// Ground truth for testing and experiments: the exact cardinality of every
// SE in the plan space, computed by directly evaluating each SE over the
// block's chain-top tables.
Result<std::unordered_map<RelMask, int64_t>> ComputeGroundTruthCards(
    const BlockContext& ctx, const std::vector<RelMask>& subexpressions,
    const ExecutionResult& exec);

// Directly materializes one SE (join of the chain tops in `rels` along the
// designed join edges). Exposed for property tests on histograms.
Result<Table> MaterializeSubexpression(const BlockContext& ctx, RelMask rels,
                                       const ExecutionResult& exec);

}  // namespace etlopt

#endif  // ETLOPT_ENGINE_INSTRUMENTATION_H_
