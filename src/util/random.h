#ifndef ETLOPT_UTIL_RANDOM_H_
#define ETLOPT_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "util/common.h"

namespace etlopt {

// Deterministic, fast PRNG (splitmix64 + xoshiro256**). Seeded explicitly so
// that data generation and experiments are reproducible run to run.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t Next();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

 private:
  uint64_t state_[4];
};

// Zipf(s) sampler over the domain {1, 2, ..., n}: P(k) ∝ 1 / k^s.
// Uses a precomputed CDF with binary search; construction is O(n), sampling
// O(log n). The paper generates its data characteristics from a Zipfian
// distribution with high skew (Section 7).
class ZipfDistribution {
 public:
  ZipfDistribution(int64_t n, double s);

  int64_t Sample(Rng& rng) const;

  int64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  int64_t n_;
  double s_;
  std::vector<double> cdf_;
};

}  // namespace etlopt

#endif  // ETLOPT_UTIL_RANDOM_H_
