#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/executor.h"
#include "obs/accuracy.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "test_util.h"
#include "util/thread_pool.h"

namespace etlopt {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser, just enough to round-trip
// the exporter output (objects, arrays, strings, numbers, bools, null).
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const {
    const auto it = object.find(key);
    EXPECT_NE(it, object.end()) << "missing JSON key: " << key;
    static const JsonValue null_value;
    return it == object.end() ? null_value : it->second;
  }
  bool has(const std::string& key) const { return object.count(key) > 0; }
};

// Payload events of a Chrome-trace document: everything except the "ph":"M"
// process/thread-naming metadata the serializer always leads with.
std::vector<const JsonValue*> PayloadEvents(const JsonValue& root) {
  std::vector<const JsonValue*> events;
  for (const JsonValue& e : root.at("traceEvents").array) {
    if (e.at("ph").str != "M") events.push_back(&e);
  }
  return events;
}

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    const bool ok = ParseValue(out);
    SkipWs();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->str);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->type = JsonValue::Type::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->type = JsonValue::Type::kBool;
      out->boolean = false;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out->type = JsonValue::Type::kNull;
      pos_ += 4;
      return true;
    }
    return ParseNumber(out);
  }

  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    if (!Consume('{')) return false;
    if (Consume('}')) return true;
    for (;;) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    if (!Consume('[')) return false;
    if (Consume(']')) return true;
    for (;;) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      if (Consume(',')) continue;
      return Consume(']');
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 't': *out += '\t'; break;
          case 'r': *out += '\r'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            // Test-only: decode BMP escapes as a single byte (exporter only
            // emits \u00XX for control characters).
            const int code = std::stoi(text_.substr(pos_, 4), nullptr, 16);
            pos_ += 4;
            *out += static_cast<char>(code & 0xff);
            break;
          }
          default:
            return false;
        }
      } else {
        *out += c;
      }
    }
    return false;
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->type = JsonValue::Type::kNumber;
    out->number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

JsonValue ParseJsonOrDie(const std::string& text) {
  JsonValue v;
  JsonParser parser(text);
  EXPECT_TRUE(parser.Parse(&v)) << "unparsable JSON: " << text;
  return v;
}

// ---------------------------------------------------------------------------
// Counter / registry semantics
// ---------------------------------------------------------------------------

TEST(ObsCounterTest, AddGetReset) {
  obs::Counter c;
  EXPECT_EQ(c.Get(), 0);
  c.Add(5);
  c.Increment();
  EXPECT_EQ(c.Get(), 6);
  c.Reset();
  EXPECT_EQ(c.Get(), 0);
}

TEST(ObsCounterTest, BatchedCounterFlushesOnDestruction) {
  obs::Counter c;
  {
    obs::BatchedCounter batch(&c);
    for (int i = 0; i < 1000; ++i) batch.Increment();
    EXPECT_EQ(c.Get(), 0) << "batched adds must not hit the atomic early";
  }
  EXPECT_EQ(c.Get(), 1000);
}

TEST(ObsRegistryTest, GetReturnsStableInstanceAndFindSeesIt) {
  auto& registry = obs::MetricsRegistry::Global();
  const std::string name = "test.obs.registry.stable";
  EXPECT_EQ(registry.FindCounter(name), nullptr);
  obs::Counter& a = registry.GetCounter(name);
  obs::Counter& b = registry.GetCounter(name);
  EXPECT_EQ(&a, &b);
  a.Add(3);
  const obs::Counter* found = registry.FindCounter(name);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found, &a);
  EXPECT_EQ(found->Get(), 3);
  // Reset zeroes values but keeps the object (and pointer) registered.
  registry.Reset();
  EXPECT_EQ(registry.FindCounter(name), &a);
  EXPECT_EQ(a.Get(), 0);
}

TEST(ObsRegistryTest, CounterGaugeHistogramNamespacesAreIndependent) {
  auto& registry = obs::MetricsRegistry::Global();
  const std::string name = "test.obs.registry.shared_name";
  registry.GetCounter(name).Add(1);
  registry.GetGauge(name).Set(2.5);
  registry.GetHistogram(name).Record(7);
  EXPECT_EQ(registry.FindCounter(name)->Get(), 1);
  EXPECT_DOUBLE_EQ(registry.FindGauge(name)->Get(), 2.5);
  EXPECT_EQ(registry.FindHistogram(name)->Count(), 1);
}

TEST(ObsRegistryTest, ConcurrentIncrementsSumExactly) {
  auto& registry = obs::MetricsRegistry::Global();
  obs::Counter& counter = registry.GetCounter("test.obs.concurrent.plain");
  obs::Counter& batched = registry.GetCounter("test.obs.concurrent.batched");
  counter.Reset();
  batched.Reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &batched] {
      obs::BatchedCounter batch(&batched);
      for (int i = 0; i < kPerThread; ++i) {
        counter.Increment();
        batch.Increment();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.Get(), int64_t{kThreads} * kPerThread);
  EXPECT_EQ(batched.Get(), int64_t{kThreads} * kPerThread);
}

TEST(ObsMetricNameTest, FormatsLabels) {
  EXPECT_EQ(obs::MetricName("a.b", {}), "a.b");
  EXPECT_EQ(obs::MetricName("a.b", {{"k", "v"}}), "a.b{k=\"v\"}");
  EXPECT_EQ(obs::MetricName("a", {{"x", "1"}, {"y", "2"}}),
            "a{x=\"1\",y=\"2\"}");
}

// ---------------------------------------------------------------------------
// LogHistogram bucket boundaries and statistics
// ---------------------------------------------------------------------------

TEST(ObsLogHistogramTest, BucketBoundaries) {
  using H = obs::LogHistogram;
  EXPECT_EQ(H::BucketIndex(-5), 0);
  EXPECT_EQ(H::BucketIndex(0), 0);
  EXPECT_EQ(H::BucketIndex(1), 1);
  EXPECT_EQ(H::BucketIndex(2), 2);
  EXPECT_EQ(H::BucketIndex(3), 2);
  EXPECT_EQ(H::BucketIndex(4), 3);
  EXPECT_EQ(H::BucketIndex(1023), 10);
  EXPECT_EQ(H::BucketIndex(1024), 11);
  EXPECT_EQ(H::BucketIndex(INT64_MAX), H::kNumBuckets - 1);
  // Every interior bucket covers exactly [lower, upper).
  for (int b = 1; b < H::kNumBuckets - 1; ++b) {
    EXPECT_EQ(H::BucketIndex(H::BucketLowerBound(b)), b) << "bucket " << b;
    EXPECT_EQ(H::BucketIndex(H::BucketUpperBound(b) - 1), b) << "bucket " << b;
    if (b + 1 < H::kNumBuckets - 1) {
      // Buckets tile: each upper bound is the next bucket's lower bound.
      EXPECT_EQ(H::BucketLowerBound(b + 1), H::BucketUpperBound(b));
    }
  }
  EXPECT_EQ(H::BucketUpperBound(H::kNumBuckets - 1), INT64_MAX);
}

TEST(ObsLogHistogramTest, RecordTracksCountSumMinMax) {
  obs::LogHistogram h;
  EXPECT_EQ(h.Count(), 0);
  EXPECT_EQ(h.Min(), INT64_MAX);
  EXPECT_EQ(h.Max(), INT64_MIN);
  for (int64_t v : {5, 100, 1, 7, 7}) h.Record(v);
  EXPECT_EQ(h.Count(), 5);
  EXPECT_EQ(h.Sum(), 120);
  EXPECT_EQ(h.Min(), 1);
  EXPECT_EQ(h.Max(), 100);
  EXPECT_DOUBLE_EQ(h.Mean(), 24.0);
  // 5, 7, 7 all land in bucket [4, 8).
  EXPECT_EQ(h.BucketCount(obs::LogHistogram::BucketIndex(7)), 3);
  // Quantiles are approximate but must stay within the observed range.
  for (double q : {0.0, 0.5, 0.9, 1.0}) {
    const double v = h.ApproxQuantile(q);
    EXPECT_GE(v, 1.0) << "q=" << q;
    EXPECT_LE(v, 100.0) << "q=" << q;
  }
  h.Reset();
  EXPECT_EQ(h.Count(), 0);
  EXPECT_EQ(h.Sum(), 0);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(ObsExportTest, JsonExportRoundTrips) {
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("test.obs.json.counter").Reset();
  registry.GetCounter("test.obs.json.counter").Add(42);
  registry.GetGauge("test.obs.json.gauge").Set(1.5);
  obs::LogHistogram& h = registry.GetHistogram("test.obs.json.hist");
  h.Reset();
  h.Record(3);
  h.Record(900);

  const JsonValue root = ParseJsonOrDie(registry.ExportJson());
  ASSERT_EQ(root.type, JsonValue::Type::kObject);
  EXPECT_DOUBLE_EQ(root.at("counters").at("test.obs.json.counter").number,
                   42.0);
  EXPECT_DOUBLE_EQ(root.at("gauges").at("test.obs.json.gauge").number, 1.5);
  const JsonValue& hist = root.at("histograms").at("test.obs.json.hist");
  EXPECT_DOUBLE_EQ(hist.at("count").number, 2.0);
  EXPECT_DOUBLE_EQ(hist.at("sum").number, 903.0);
  EXPECT_DOUBLE_EQ(hist.at("min").number, 3.0);
  EXPECT_DOUBLE_EQ(hist.at("max").number, 900.0);
  int64_t bucket_total = 0;
  for (const JsonValue& bucket : hist.at("buckets").array) {
    bucket_total += static_cast<int64_t>(bucket.at("count").number);
    EXPECT_TRUE(bucket.has("lo"));
    EXPECT_TRUE(bucket.has("hi"));
  }
  EXPECT_EQ(bucket_total, 2);
}

TEST(ObsExportTest, PrometheusSanitizesNamesAndEmitsCumulativeBuckets) {
  auto& registry = obs::MetricsRegistry::Global();
  registry
      .GetCounter(obs::MetricName("test.obs.prom.counter", {{"op", "Join"}}))
      .Reset();
  registry
      .GetCounter(obs::MetricName("test.obs.prom.counter", {{"op", "Join"}}))
      .Add(9);
  obs::LogHistogram& h = registry.GetHistogram("test.obs.prom.hist");
  h.Reset();
  h.Record(1);
  h.Record(2);
  h.Record(1000000);

  const std::string text = registry.ExportPrometheus();
  EXPECT_NE(text.find("test_obs_prom_counter{op=\"Join\"} 9\n"),
            std::string::npos)
      << text;
  // Dots never survive sanitization in the metric name itself.
  for (size_t pos = text.find("test"); pos != std::string::npos;
       pos = text.find("test", pos + 1)) {
    const size_t end = text.find_first_of(" {", pos);
    ASSERT_NE(end, std::string::npos);
    EXPECT_EQ(text.substr(pos, end - pos).find('.'), std::string::npos);
  }
  // Cumulative bucket counts: the +Inf bucket equals the total count and
  // every le-bucket is non-decreasing.
  EXPECT_NE(text.find("test_obs_prom_hist_bucket{le=\"2\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("test_obs_prom_hist_bucket{le=\"4\"} 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("test_obs_prom_hist_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("test_obs_prom_hist_sum 1000003\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("test_obs_prom_hist_count 3\n"), std::string::npos)
      << text;
}

TEST(ObsExportTest, HistogramQuantilesInJsonAndPrometheus) {
  auto& registry = obs::MetricsRegistry::Global();
  obs::LogHistogram& h = registry.GetHistogram("test.obs.quant.hist");
  h.Reset();
  // 98 fast samples, 2 slow outliers: p50 sits in the dense bucket while
  // p99 must climb into the tail.
  for (int i = 0; i < 98; ++i) h.Record(10);
  h.Record(1000);
  h.Record(100000);

  const JsonValue root = ParseJsonOrDie(registry.ExportJson());
  const JsonValue& hist = root.at("histograms").at("test.obs.quant.hist");
  ASSERT_TRUE(hist.has("p50"));
  ASSERT_TRUE(hist.has("p95"));
  ASSERT_TRUE(hist.has("p99"));
  const double p50 = hist.at("p50").number;
  const double p95 = hist.at("p95").number;
  const double p99 = hist.at("p99").number;
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Quantiles interpolate within log buckets but stay clamped to the
  // observed range; p50 stays near the dense value, p99 reaches the tail.
  EXPECT_GE(p50, 10.0);
  EXPECT_LE(p50, 16.0);  // upper bound of 10's power-of-two bucket
  EXPECT_GT(p99, 500.0);
  EXPECT_LE(p99, 100000.0);

  const std::string text = registry.ExportPrometheus();
  EXPECT_NE(text.find("test_obs_quant_hist_p50 "), std::string::npos) << text;
  EXPECT_NE(text.find("test_obs_quant_hist_p95 "), std::string::npos) << text;
  EXPECT_NE(text.find("test_obs_quant_hist_p99 "), std::string::npos) << text;

  // An empty histogram exports no quantile keys (they would be lies).
  h.Reset();
  const JsonValue empty_root = ParseJsonOrDie(registry.ExportJson());
  const JsonValue& empty_hist =
      empty_root.at("histograms").at("test.obs.quant.hist");
  EXPECT_FALSE(empty_hist.has("p50"));
  EXPECT_EQ(registry.ExportPrometheus().find("test_obs_quant_hist_p50"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST(ObsTracerTest, NestedSpansProduceValidChromeTrace) {
  obs::SetObsEnabled(true);
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Clear();
  tracer.SetEnabled(true);
  {
    obs::ScopedSpan outer("test.outer");
    outer.Arg("rows", int64_t{42});
    outer.Arg("label", std::string("a\"b"));
    {
      obs::ScopedSpan inner("test.inner");
      inner.Arg("cost", 1.5);
    }
  }
  tracer.SetEnabled(false);
  ASSERT_EQ(tracer.NumEvents(), 2u);

  const JsonValue root = ParseJsonOrDie(tracer.ChromeTraceJson());
  const std::vector<const JsonValue*> events = PayloadEvents(root);
  ASSERT_EQ(events.size(), 2u);
  const JsonValue* outer_ev = nullptr;
  const JsonValue* inner_ev = nullptr;
  for (const JsonValue* e : events) {
    EXPECT_EQ(e->at("ph").str, "X");
    EXPECT_TRUE(e->has("ts"));
    EXPECT_TRUE(e->has("dur"));
    if (e->at("name").str == "test.outer") outer_ev = e;
    if (e->at("name").str == "test.inner") inner_ev = e;
  }
  ASSERT_NE(outer_ev, nullptr);
  ASSERT_NE(inner_ev, nullptr);
  // Nesting by timestamp containment: inner lives inside outer.
  const double outer_start = outer_ev->at("ts").number;
  const double outer_end = outer_start + outer_ev->at("dur").number;
  const double inner_start = inner_ev->at("ts").number;
  const double inner_end = inner_start + inner_ev->at("dur").number;
  EXPECT_GE(inner_start, outer_start);
  EXPECT_LE(inner_end, outer_end);
  EXPECT_DOUBLE_EQ(outer_ev->at("args").at("rows").number, 42.0);
  EXPECT_EQ(outer_ev->at("args").at("label").str, "a\"b");
  EXPECT_DOUBLE_EQ(inner_ev->at("args").at("cost").number, 1.5);
  tracer.Clear();
}

TEST(ObsTracerTest, DisabledTracerRecordsNothing) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Clear();
  tracer.SetEnabled(false);
  {
    obs::ScopedSpan span("test.should_not_appear");
    span.Arg("x", int64_t{1});
  }
  EXPECT_EQ(tracer.NumEvents(), 0u);
}

TEST(ObsTracerTest, UnclosedSpansSerializeAsBeginEvents) {
  obs::SetObsEnabled(true);
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Clear();
  tracer.SetEnabled(true);
  {
    obs::ScopedSpan closed("test.closed");
  }
  // A span still on the stack when the trace is dumped — the shape an
  // aborted run leaves behind.
  auto open = std::make_unique<obs::ScopedSpan>("test.still_open");
  EXPECT_EQ(tracer.NumOpenSpans(), 1u);

  const std::string json = tracer.ChromeTraceJson();
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root)) << json;
  const std::vector<const JsonValue*> events = PayloadEvents(root);
  ASSERT_EQ(events.size(), 2u);
  bool saw_open = false;
  for (const JsonValue* e : events) {
    if (e->at("name").str == "test.still_open") {
      saw_open = true;
      EXPECT_EQ(e->at("ph").str, "B");  // unmatched begin: viewers tolerate it
      EXPECT_TRUE(e->has("ts"));
      EXPECT_FALSE(e->has("dur"));
    } else {
      EXPECT_EQ(e->at("ph").str, "X");
    }
  }
  EXPECT_TRUE(saw_open);

  // Once the span ends normally it resolves into a complete event.
  open.reset();
  EXPECT_EQ(tracer.NumOpenSpans(), 0u);
  JsonValue after;
  ASSERT_TRUE(JsonParser(tracer.ChromeTraceJson()).Parse(&after));
  const std::vector<const JsonValue*> after_events = PayloadEvents(after);
  ASSERT_EQ(after_events.size(), 2u);
  for (const JsonValue* e : after_events) {
    EXPECT_EQ(e->at("ph").str, "X");
  }
  tracer.SetEnabled(false);
  tracer.Clear();
}

TEST(ObsTracerTest, WriteChromeTraceIsAtomicAndLoadable) {
  obs::SetObsEnabled(true);
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Clear();
  tracer.SetEnabled(true);
  auto open = std::make_unique<obs::ScopedSpan>("test.open_at_dump");
  // Pid-qualified so the sanitizer twin can run concurrently under ctest.
  const std::string path = ::testing::TempDir() +
                           std::to_string(getpid()) + "_obs_trace_test.json";
  ASSERT_TRUE(tracer.WriteChromeTrace(path).ok());
  open.reset();
  tracer.SetEnabled(false);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  JsonValue root;
  ASSERT_TRUE(JsonParser(buf.str()).Parse(&root)) << buf.str();
  const std::vector<const JsonValue*> events = PayloadEvents(root);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0]->at("ph").str, "B");
  // The temp file was renamed away, not left behind.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
  tracer.Clear();
}

TEST(ObsTracerTest, MetadataEventsNameProcessAndThreads) {
  obs::SetObsEnabled(true);
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Clear();
  tracer.SetEnabled(true);
  { obs::ScopedSpan span("test.meta"); }
  tracer.SetEnabled(false);

  const JsonValue root = ParseJsonOrDie(tracer.ChromeTraceJson());
  const std::vector<JsonValue>& events = root.at("traceEvents").array;
  ASSERT_GE(events.size(), 3u);  // process_name + >=1 thread_name + span
  // Metadata leads the document so viewers label rows before any slice.
  EXPECT_EQ(events[0].at("ph").str, "M");
  EXPECT_EQ(events[0].at("name").str, "process_name");
  EXPECT_EQ(events[0].at("args").at("name").str, "etlopt");
  bool named_main = false;
  for (const JsonValue& e : events) {
    if (e.at("ph").str != "M" || e.at("name").str != "thread_name") continue;
    EXPECT_TRUE(e.has("tid"));
    if (e.at("tid").number == 1.0) {
      named_main = true;
      EXPECT_EQ(e.at("args").at("name").str, "main");
    }
  }
  EXPECT_TRUE(named_main);
  tracer.Clear();
}

TEST(ObsTracerTest, ConcurrentSpanEmissionAssignsPerThreadTids) {
  // The partitioned executor's workers emit spans concurrently; every span
  // must land, each emitting thread gets its own stable tid, and the "M"
  // metadata block names all of them. A start barrier pins each ParallelFor
  // index to a distinct pool thread so exactly kThreads tids appear.
  obs::SetObsEnabled(true);
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Clear();
  tracer.SetEnabled(true);
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  std::atomic<int> started{0};
  {
    ThreadPool pool(kThreads);
    const Status s = pool.ParallelFor(kThreads, [&](int t) {
      started.fetch_add(1);
      while (started.load() < kThreads) std::this_thread::yield();
      for (int i = 0; i < kSpansPerThread; ++i) {
        obs::ScopedSpan span("test.concurrent");
        span.Arg("worker", static_cast<int64_t>(t));
      }
      return Status::OK();
    });
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
  tracer.SetEnabled(false);
  ASSERT_EQ(tracer.NumEvents(),
            static_cast<size_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(tracer.NumOpenSpans(), 0u);

  const JsonValue root = ParseJsonOrDie(tracer.ChromeTraceJson());
  std::set<double> span_tids;
  for (const JsonValue* e : PayloadEvents(root)) {
    EXPECT_EQ(e->at("ph").str, "X");
    ASSERT_TRUE(e->has("tid"));
    span_tids.insert(e->at("tid").number);
  }
  EXPECT_EQ(span_tids.size(), static_cast<size_t>(kThreads));
  // Every emitting tid has a thread_name metadata row.
  std::set<double> named_tids;
  for (const JsonValue& e : root.at("traceEvents").array) {
    if (e.at("ph").str == "M" && e.at("name").str == "thread_name") {
      named_tids.insert(e.at("tid").number);
    }
  }
  for (const double tid : span_tids) {
    EXPECT_TRUE(named_tids.count(tid) > 0) << "unnamed tid " << tid;
  }
  tracer.Clear();
}

TEST(ObsTracerTest, ProfileCounterEventsCarryNoDuration) {
  obs::SetObsEnabled(true);
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Clear();
  tracer.SetEnabled(true);

  obs::RunProfile profile;
  obs::OpProfile op;
  op.node = 2;
  op.op = "Join";
  op.label = "join2";
  op.self_ns = 5000;
  op.rows_out = 40;
  profile.ops.push_back(op);
  profile.tap_ns = 300;
  obs::EmitProfileCounters(profile);
  tracer.SetEnabled(false);

  const JsonValue root = ParseJsonOrDie(tracer.ChromeTraceJson());
  const JsonValue* op_event = nullptr;
  const JsonValue* tap_event = nullptr;
  for (const JsonValue* e : PayloadEvents(root)) {
    if (e->at("name").str == "profile.op") op_event = e;
    if (e->at("name").str == "profile.tap") tap_event = e;
  }
  ASSERT_NE(op_event, nullptr);
  ASSERT_NE(tap_event, nullptr);
  // Counter samples: phase "C", a timestamp, and no duration field.
  EXPECT_EQ(op_event->at("ph").str, "C");
  EXPECT_TRUE(op_event->has("ts"));
  EXPECT_FALSE(op_event->has("dur"));
  EXPECT_DOUBLE_EQ(op_event->at("args").at("join2.self_ns").number, 5000.0);
  EXPECT_DOUBLE_EQ(op_event->at("args").at("join2.rows_out").number, 40.0);
  EXPECT_EQ(tap_event->at("ph").str, "C");
  EXPECT_DOUBLE_EQ(tap_event->at("args").at("tap_ns").number, 300.0);
  tracer.Clear();
}

// ---------------------------------------------------------------------------
// Accuracy tracker
// ---------------------------------------------------------------------------

TEST(ObsAccuracyTest, QErrorIsSymmetricAndClamped) {
  EXPECT_DOUBLE_EQ(obs::QError(100, 10), 10.0);
  EXPECT_DOUBLE_EQ(obs::QError(10, 100), 10.0);
  EXPECT_DOUBLE_EQ(obs::QError(50, 50), 1.0);
  // Zero/negative cardinalities clamp to 1 instead of dividing by zero.
  EXPECT_DOUBLE_EQ(obs::QError(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(obs::QError(0, 8), 8.0);
  EXPECT_GE(obs::QError(-3, 5), 1.0);
}

TEST(ObsAccuracyTest, TrackerGroupsByOpTypeAndDepth) {
  obs::SetObsEnabled(true);
  obs::AccuracyTracker& tracker = obs::AccuracyTracker::Global();
  tracker.Reset();
  EXPECT_TRUE(tracker.empty());
  tracker.Record("join", 2, 100, 50);
  tracker.Record("join", 2, 80, 80);
  tracker.Record("chain", 0, 10, 10);
  EXPECT_EQ(tracker.total_samples(), 3);
  const auto summaries = tracker.Summaries();
  ASSERT_EQ(summaries.size(), 2u);
  bool saw_join = false;
  for (const auto& [key, summary] : summaries) {
    if (key.first == "join") {
      saw_join = true;
      EXPECT_EQ(key.second, 2);
      EXPECT_EQ(summary.count, 2);
      EXPECT_DOUBLE_EQ(summary.max, 2.0);
    }
  }
  EXPECT_TRUE(saw_join);
  const std::string table = tracker.FormatTable();
  EXPECT_NE(table.find("join"), std::string::npos);
  EXPECT_NE(table.find("chain"), std::string::npos);
  tracker.Reset();
  EXPECT_TRUE(tracker.empty());
}

// ---------------------------------------------------------------------------
// Executor integration: per-operator row counters match actual cardinalities
// ---------------------------------------------------------------------------

TEST(ObsExecutorIntegrationTest, RowCountersMatchExecutionResult) {
  obs::SetObsEnabled(true);
  auto& registry = obs::MetricsRegistry::Global();
  registry.Reset();

  testing_util::PaperExample ex = testing_util::MakePaperExample();
  Executor executor(&ex.workflow);
  Result<ExecutionResult> result = executor.Execute(ex.sources);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  int64_t expected_rows_out = 0;
  for (const WorkflowNode& node : ex.workflow.nodes()) {
    const auto it = result->node_outputs.find(node.id);
    ASSERT_NE(it, result->node_outputs.end());
    const int64_t actual = it->second.num_rows();
    expected_rows_out += actual;
    const std::string name = obs::MetricName(
        "etlopt.engine.rows_out",
        {{"wf", ex.workflow.name()},
         {"node", std::to_string(node.id)},
         {"op", OpKindName(node.kind)}});
    const obs::Counter* c = registry.FindCounter(name);
    ASSERT_NE(c, nullptr) << "missing per-operator counter " << name;
    EXPECT_EQ(c->Get(), actual) << name;
    if (node.kind != OpKind::kSink) {
      EXPECT_GT(c->Get(), 0) << name;
    }
  }

  const obs::Counter* ops = registry.FindCounter("etlopt.engine.ops_executed");
  ASSERT_NE(ops, nullptr);
  EXPECT_EQ(ops->Get(), ex.workflow.num_nodes());
  const obs::Counter* rows_out =
      registry.FindCounter("etlopt.engine.rows_out");
  ASSERT_NE(rows_out, nullptr);
  EXPECT_EQ(rows_out->Get(), expected_rows_out);
  const obs::Counter* processed =
      registry.FindCounter("etlopt.engine.rows_processed");
  ASSERT_NE(processed, nullptr);
  EXPECT_EQ(processed->Get(), result->rows_processed);

  // Reject counters exist for the joins and agree with the captured tables.
  int64_t rejects_right = 0;
  for (const auto& [node_id, table] : result->join_rejects_right) {
    rejects_right += table.num_rows();
  }
  const obs::Counter* rr =
      registry.FindCounter("etlopt.engine.join.rejects_right");
  ASSERT_NE(rr, nullptr);
  EXPECT_EQ(rr->Get(), rejects_right);
}

TEST(ObsDisableTest, RuntimeDisableSkipsRecording) {
  auto& registry = obs::MetricsRegistry::Global();
  obs::SetObsEnabled(false);
  registry.GetCounter("test.obs.disabled.counter").Reset();
  ETLOPT_COUNTER_ADD("test.obs.disabled.counter", 5);
  EXPECT_EQ(registry.FindCounter("test.obs.disabled.counter")->Get(), 0);
  obs::SetObsEnabled(true);
  ETLOPT_COUNTER_ADD("test.obs.disabled.counter", 5);
  EXPECT_EQ(registry.FindCounter("test.obs.disabled.counter")->Get(), 5);
}

}  // namespace
}  // namespace etlopt
